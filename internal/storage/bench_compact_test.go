package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
)

// The compact-pause benchmark for ISSUE 10: on a 50k-record shard, the
// write-lock pause of a compaction must improve ≥10x when the state provides
// a SnapshotViewer (capture a cheap copy-on-write view under the lock, encode
// off it) versus the legacy path (full JSON encode under the lock). The state
// mirrors the production dataState shape — a top-level map keyed by user whose
// values are per-user record sets — because that is what makes the view
// capture O(users) instead of O(records): cloning map headers is cheap, the
// encode that walks every record is not.

// benchRec journals one slot write: user U's record R becomes payload P.
type benchRec struct {
	U string `json:"u"`
	R int    `json:"r"`
	P string `json:"p"`
}

// benchUserKV is the legacy-path state: per-user record sets with no snapshot
// view, so compaction encodes the whole map under the shard lock.
type benchUserKV struct {
	m map[string][]string
}

func newBenchUserKV() *benchUserKV { return &benchUserKV{m: map[string][]string{}} }

func (s *benchUserKV) set(rec benchRec) {
	rs := slices.Clone(s.m[rec.U]) // copy-on-write: never mutate a captured view's slice
	for len(rs) <= rec.R {
		rs = append(rs, "")
	}
	rs[rec.R] = rec.P
	s.m[rec.U] = rs
}

func (s *benchUserKV) Apply(raw []byte) error {
	var rec benchRec
	if err := json.Unmarshal(raw, &rec); err != nil {
		return err
	}
	s.set(rec)
	return nil
}

func (s *benchUserKV) Snapshot() ([]byte, error) { return json.Marshal(s.m) }

func (s *benchUserKV) Restore(snap []byte) error {
	m := map[string][]string{}
	if err := json.Unmarshal(snap, &m); err != nil {
		return err
	}
	s.m = m
	return nil
}

// benchCowKV adds the off-lock extension: SnapshotView clones only the
// top-level map (slice values are never mutated in place, see set), and the
// expensive Marshal runs in the returned encoder, off the shard lock.
type benchCowKV struct {
	benchUserKV
}

func newBenchCowKV() *benchCowKV { return &benchCowKV{benchUserKV{m: map[string][]string{}}} }

func (s *benchCowKV) SnapshotView() (func(io.Writer) error, func(), error) {
	view := maps.Clone(s.m)
	encode := func(w io.Writer) error {
		payload, err := json.Marshal(view)
		if err != nil {
			return err
		}
		_, err = w.Write(payload)
		return err
	}
	return encode, func() {}, nil
}

func (s *benchCowKV) RestoreStream(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return s.Restore(b)
}

// pauseStats summarizes exact per-compaction pause samples (microseconds).
type pauseStats struct {
	Compactions int     `json:"compactions"`
	P50US       float64 `json:"p50_us"`
	P99US       float64 `json:"p99_us"`
	MaxUS       float64 `json:"max_us"`
}

func summarizePauses(samples []float64) pauseStats {
	sort.Float64s(samples)
	q := func(p float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return pauseStats{
		Compactions: len(samples),
		P50US:       q(0.50),
		P99US:       q(0.99),
		MaxUS:       samples[len(samples)-1],
	}
}

// measureCompactPauses populates a single durable shard with `users` × `recs`
// records, then runs `rounds` compactions with a burst of updates between
// each, returning the exact write-lock pause of every compaction. Exactness
// comes from delta-reading the pci_storage_compact_pause_us histogram Sum
// around each Compact call — sums are exact, bucket bounds are not.
func measureCompactPauses(t *testing.T, dir string, state ShardState, users, recs, rounds int) pauseStats {
	t.Helper()
	reg := obs.NewRegistry()
	e, err := Open(Options{
		Dir:          dir,
		Sync:         SyncNever,
		CompactEvery: -1, // only the explicit Compact calls below
		Metrics:      reg,
	}, []ShardState{state})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(10))
	setter := state.(interface{ set(benchRec) })
	write := func(u, r int) {
		rec := benchRec{U: fmt.Sprintf("user-%06d", u), R: r, P: fmt.Sprintf("payload-%06d-%02d-%016x", u, r, rng.Int63())}
		err := e.Mutate(0, func() ([]byte, error) {
			raw, err := json.Marshal(&rec)
			if err != nil {
				return nil, err
			}
			setter.set(rec)
			return raw, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < users; u++ {
		for r := 0; r < recs; r++ {
			write(u, r)
		}
	}

	samples := make([]float64, 0, rounds)
	prev := reg.Snapshot().Histograms["pci_storage_compact_pause_us"].Sum
	for i := 0; i < rounds; i++ {
		for j := 0; j < 200; j++ { // updates, not inserts: the shard stays at users×recs records
			write(rng.Intn(users), rng.Intn(recs))
		}
		// Collect allocator debt outside the measured window: GC stalls on
		// this 1-core host hit both paths alike and are not what the
		// comparison measures.
		runtime.GC()
		if err := e.Compact(0); err != nil {
			t.Fatal(err)
		}
		sum := reg.Snapshot().Histograms["pci_storage_compact_pause_us"].Sum
		samples = append(samples, float64(sum-prev))
		prev = sum
	}
	return summarizePauses(samples)
}

// TestCompactPauseBenchRecord appends the off_lock_compaction section to the
// JSON report named by STORAGE_BENCH_OUT (normally BENCH_storage.json, merged
// in place so existing sections survive). Skipped in normal runs —
// measurement is not a correctness gate — but when run it enforces the
// ISSUE 10 floor: compact-pause p99 improves ≥10x on a 50k-record shard when
// the state provides a snapshot view.
func TestCompactPauseBenchRecord(t *testing.T) {
	out := os.Getenv("STORAGE_BENCH_OUT")
	if out == "" {
		t.Skip("set STORAGE_BENCH_OUT to record the compact-pause benchmark")
	}
	const (
		users  = 1000
		recs   = 50 // 50k records total — the ISSUE 10 shard size
		rounds = 60
	)
	// Prefer tmpfs: the pause comparison measures lock-held CPU work (the
	// O(records) encode vs the O(users) view capture). On this host's shared
	// virtio disk the one dir fsync both paths pay in-lock jitters by
	// milliseconds, which swamps the sub-millisecond off-lock pause with
	// device noise that has nothing to do with either path.
	media := "tmpfs"
	benchDir := func() string {
		d, err := os.MkdirTemp("/dev/shm", "pmware-compact-bench-")
		if err != nil {
			media = "disk"
			return t.TempDir()
		}
		t.Cleanup(func() { os.RemoveAll(d) })
		return d
	}
	legacy := measureCompactPauses(t, benchDir(), newBenchUserKV(), users, recs, rounds)
	offLock := measureCompactPauses(t, benchDir(), newBenchCowKV(), users, recs, rounds)
	improvement := legacy.P99US / offLock.P99US
	t.Logf("legacy in-lock pause:  p50 %.0fµs p99 %.0fµs max %.0fµs", legacy.P50US, legacy.P99US, legacy.MaxUS)
	t.Logf("off-lock view pause:   p50 %.0fµs p99 %.0fµs max %.0fµs", offLock.P50US, offLock.P99US, offLock.MaxUS)
	t.Logf("pause p99 improvement: %.1fx", improvement)
	if improvement < 10 {
		t.Errorf("pause p99 improved only %.1fx, under the 10x floor", improvement)
	}

	section := struct {
		Recorded string     `json:"recorded"`
		Go       string     `json:"go_version"`
		Command  string     `json:"command"`
		Note     string     `json:"note"`
		Shard    string     `json:"shard"`
		Legacy   pauseStats `json:"legacy_in_lock_pause"`
		OffLock  pauseStats `json:"snapshot_view_pause"`
		P99Gain  float64    `json:"pause_p99_improvement"`
	}{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Go:       runtime.Version(),
		Command:  "STORAGE_BENCH_OUT=BENCH_storage.json go test ./internal/storage -run TestCompactPauseBenchRecord -v",
		Note: "Write-lock pause per compaction (exact histogram-sum deltas around each Compact), " +
			"legacy state (whole-map JSON encode under the lock) vs SnapshotViewer state " +
			"(top-level map clone under the lock, encode off it). Both paths write, fsync, and " +
			"rename the snapshot off the lock; the residual off-lock pause is the clone plus the " +
			"wal-(N+1) create+dir-sync. Runs on tmpfs when available so the comparison isolates " +
			"the lock-held work from this shared virtio disk's multi-ms fsync jitter, which hits " +
			"the one O(1) dir sync both paths pay identically. The 10x floor is ISSUE 10's " +
			"acceptance bar.",
		Shard:   fmt.Sprintf("%d users x %d records = %d records, fsync=never, %s", users, recs, users*recs, media),
		Legacy:  legacy,
		OffLock: offLock,
		P99Gain: improvement,
	}

	report := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	blob, err := json.Marshal(section)
	if err != nil {
		t.Fatal(err)
	}
	report["off_lock_compaction"] = blob
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
