package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestWALMetricsDeltas pins the WAL counters to independently-known ground
// truth: after N single-writer mutations under fsync=always,
//
//   - storage_wal_append_records_total == N,
//   - storage_wal_append_bytes_total   == the WAL file's size on disk,
//   - storage_wal_fsync_total          == commit batches (one fsync each).
func TestWALMetricsDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	st := newKV()
	e, err := Open(Options{Dir: dir, Sync: SyncAlways, CompactEvery: -1, Metrics: reg}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}

	const n = 40
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := e.Mutate(0, func() ([]byte, error) {
			st.m[key] = "v"
			return kvRecord(key, "v"), nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	s := reg.Snapshot()
	if got := s.Counter("storage_wal_append_records_total"); got != n {
		t.Errorf("append records = %d, want %d", got, n)
	}
	fi, err := os.Stat(filepath.Join(dir, "shard-000", walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Counter("storage_wal_append_bytes_total"); got != uint64(fi.Size()) {
		t.Errorf("append bytes = %d, on-disk WAL is %d bytes", got, fi.Size())
	}
	batches, records := e.shards[0].c.stats()
	if records != n {
		t.Fatalf("committer records = %d, want %d", records, n)
	}
	if got := s.Counter("storage_wal_fsync_total"); got != batches {
		t.Errorf("fsyncs = %d, want %d (one per commit batch under fsync=always)", got, batches)
	}
	e.Close()
}

// TestGroupCommitBatchSizeHistogram drives 8 concurrent writers under
// fsync=always and checks the batch-size histogram against the committer's
// own accounting: count == batches, sum == records, so the histogram mean IS
// the measured coalescing ratio from commit_test.go's stats() — the two
// instruments must agree exactly.
func TestGroupCommitBatchSizeHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	st := newKV()
	e, err := Open(Options{
		Dir: t.TempDir(), Sync: SyncAlways, CompactEvery: -1, Metrics: reg,
	}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers, perWriter = 8, 16
	driveConcurrent(t, e, st, writers, perWriter)

	batches, records := e.shards[0].c.stats()
	if records != writers*perWriter {
		t.Fatalf("committed %d records, want %d", records, writers*perWriter)
	}
	h, ok := reg.Snapshot().Histograms["storage_commit_batch_records"]
	if !ok {
		t.Fatal("storage_commit_batch_records histogram not registered")
	}
	if h.Count != batches {
		t.Errorf("histogram count = %d, committer flushed %d batches", h.Count, batches)
	}
	if uint64(h.Sum) != records {
		t.Errorf("histogram sum = %d, committer carried %d records", h.Sum, records)
	}
	wantMean := float64(records) / float64(batches)
	if got := h.Mean(); got != wantMean {
		t.Errorf("histogram mean = %g, want coalescing ratio %g", got, wantMean)
	}
	s := reg.Snapshot()
	if got := s.Counter("storage_commit_batches_total"); got != batches {
		t.Errorf("commit batches counter = %d, want %d", got, batches)
	}
	if got := s.Counter("storage_commit_records_total"); got != records {
		t.Errorf("commit records counter = %d, want %d", got, records)
	}
}

// TestReplayMetricsDeltas crashes an engine (abandon without Close), tears
// the WAL tail by appending garbage, and reopens with a fresh registry: the
// replay counters must report exactly the records written and exactly one
// truncated tail.
func TestReplayMetricsDeltas(t *testing.T) {
	dir := t.TempDir()
	st := newKV()
	e, err := Open(Options{Dir: dir, Sync: SyncAlways, CompactEvery: -1, Metrics: obs.NewRegistry()}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	const n = 17
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := e.Mutate(0, func() ([]byte, error) {
			st.m[key] = "v"
			return kvRecord(key, "v"), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. Then tear the tail with a partial frame.
	walPath := filepath.Join(dir, "shard-000", walName(0))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	st2 := newKV()
	e2, err := Open(Options{Dir: dir, Sync: SyncAlways, CompactEvery: -1, Metrics: reg}, []ShardState{st2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if len(st2.m) != n {
		t.Fatalf("recovered %d records, want %d", len(st2.m), n)
	}
	s := reg.Snapshot()
	if got := s.Counter("storage_replay_records_total"); got != n {
		t.Errorf("replay records = %d, want %d", got, n)
	}
	if got := s.Counter("storage_replay_torn_tails_total"); got != 1 {
		t.Errorf("torn tails = %d, want 1", got)
	}
}

// TestCompactionMetricsDeltas: explicit Compact calls must be mirrored
// one-for-one by the compaction counter and its duration histogram.
func TestCompactionMetricsDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	st := newKV()
	e, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever, CompactEvery: -1, Metrics: reg}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	const compactions = 3
	for i := 0; i < compactions; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := e.Mutate(0, func() ([]byte, error) {
			st.m[key] = "v"
			return kvRecord(key, "v"), nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Compact(0); err != nil {
			t.Fatal(err)
		}
	}
	before := reg.Snapshot()
	e.Close() // already compact (since == 0): Close must not add a cycle
	s := reg.Snapshot()
	if got := s.Counter("storage_compactions_total"); got != compactions {
		t.Errorf("compactions = %d, want %d", got, compactions)
	}
	if got := s.CounterDelta(before, "storage_compactions_total"); got != 0 {
		t.Errorf("Close added %d compactions on an already-compact shard", got)
	}
	h := s.Histograms["storage_compaction_duration_us"]
	if h.Count != compactions {
		t.Errorf("compaction duration observations = %d, want %d", h.Count, compactions)
	}
}
