package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Chunked snapshot layout (v2, DESIGN.md §16):
//
//	| magic "PMSNAP02" | chunk* | end marker |
//	chunk:      | u32 payload length (>0) | u32 CRC32-IEEE(payload) | payload |
//	end marker: | u32 0                   | u32 CRC32-IEEE(magic)   |
//
// little-endian, same frame header as the WAL. The encoder streams the state
// straight into chunk frames, so neither writer nor reader ever holds the
// whole shard as one []byte; the explicit end marker distinguishes "complete
// snapshot" from "crash truncated the file mid-write", which the off-lock
// compaction protocol depends on. Files that do not start with the magic are
// read as the legacy v1 single-frame layout (u32 len | u32 crc | payload) so
// stores written before this format — and tests that craft v1 files — still
// open.
const snapMagic = "PMSNAP02"

// snapChunkSize is the encoder's target chunk payload size. Large enough to
// amortize framing and Write syscalls, small enough that the reader's
// per-chunk buffer stays cheap.
const snapChunkSize = 256 << 10

// maxSnapChunk bounds a single chunk on read; a larger length prefix means a
// corrupt file (the writer never produces one above snapChunkSize).
const maxSnapChunk = 4 << 20

// snapEndCRC is the constant checksum field of the end marker. Any value
// would do for framing, but a fixed non-zero constant means a zero-filled
// torn tail can never fake a valid end marker.
var snapEndCRC = crc32.ChecksumIEEE([]byte(snapMagic))

// snapshotWriter chunk-frames a payload stream into an *os.File. Not
// concurrency-safe; exactly one encoder writes to it.
type snapshotWriter struct {
	f       *os.File
	buf     []byte
	payload int64 // payload bytes accepted via Write
}

func newSnapshotWriter(f *os.File) (*snapshotWriter, error) {
	if _, err := f.Write([]byte(snapMagic)); err != nil {
		return nil, err
	}
	return &snapshotWriter{f: f, buf: make([]byte, 0, snapChunkSize)}, nil
}

func (sw *snapshotWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		room := snapChunkSize - len(sw.buf)
		if room == 0 {
			if err := sw.flushChunk(); err != nil {
				return 0, err
			}
			room = snapChunkSize
		}
		n := min(room, len(p))
		sw.buf = append(sw.buf, p[:n]...)
		p = p[n:]
	}
	sw.payload += int64(total)
	return total, nil
}

func (sw *snapshotWriter) flushChunk() error {
	if len(sw.buf) == 0 {
		return nil
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(sw.buf)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(sw.buf))
	if _, err := sw.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := sw.f.Write(sw.buf); err != nil {
		return err
	}
	sw.buf = sw.buf[:0]
	return nil
}

// finish flushes the final partial chunk and writes the end marker.
func (sw *snapshotWriter) finish() error {
	if err := sw.flushChunk(); err != nil {
		return err
	}
	var end [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(end[4:8], snapEndCRC)
	_, err := sw.f.Write(end[:])
	return err
}

// writeSnapshotFile streams encode's output into path as a chunked v2
// snapshot, via temp file + fsync + rename + directory fsync, so a crash at
// any point leaves either no snapshot-<N+1> or a complete one — and a crash
// after the rename but before the directory fsync leaves a file that recovery
// validates before trusting. Returns the payload byte count (pre-framing).
func writeSnapshotFile(path string, encode func(io.Writer) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	sw, err := newSnapshotWriter(f)
	if err != nil {
		return fail(err)
	}
	if err := encode(sw); err != nil {
		return fail(err)
	}
	if err := sw.finish(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(path); err != nil {
		return 0, err
	}
	return sw.payload, nil
}

// snapChunkScanner iterates the chunk frames of a v2 snapshot, verifying
// each CRC. next returns (payload, false, nil) per chunk, (nil, true, nil)
// at a valid end marker, and an error on any torn or corrupt frame. The
// returned payload aliases an internal buffer reused by the next call.
type snapChunkScanner struct {
	r   *bufio.Reader
	hdr [frameHeaderSize]byte
	buf []byte
}

func newSnapChunkScanner(r io.Reader) *snapChunkScanner {
	return &snapChunkScanner{r: bufio.NewReaderSize(r, 64<<10)}
}

func (sc *snapChunkScanner) next() (payload []byte, end bool, err error) {
	if _, err := io.ReadFull(sc.r, sc.hdr[:]); err != nil {
		return nil, false, fmt.Errorf("storage: snapshot truncated: %w", err)
	}
	ln := binary.LittleEndian.Uint32(sc.hdr[0:4])
	crc := binary.LittleEndian.Uint32(sc.hdr[4:8])
	if ln == 0 {
		if crc != snapEndCRC {
			return nil, false, fmt.Errorf("storage: snapshot end marker corrupt")
		}
		// Nothing may follow the end marker; trailing bytes mean the file is
		// not what the writer produced.
		if _, err := sc.r.ReadByte(); err != io.EOF {
			return nil, false, fmt.Errorf("storage: snapshot has trailing data")
		}
		return nil, true, nil
	}
	if ln > maxSnapChunk {
		return nil, false, fmt.Errorf("storage: snapshot chunk of %d bytes exceeds bound", ln)
	}
	if cap(sc.buf) < int(ln) {
		sc.buf = make([]byte, ln)
	}
	sc.buf = sc.buf[:ln]
	if _, err := io.ReadFull(sc.r, sc.buf); err != nil {
		return nil, false, fmt.Errorf("storage: snapshot chunk truncated: %w", err)
	}
	if crc32.ChecksumIEEE(sc.buf) != crc {
		return nil, false, fmt.Errorf("storage: snapshot chunk checksum mismatch")
	}
	return sc.buf, false, nil
}

// validateSnapV2 scans every chunk of an already-magic-matched v2 snapshot
// stream, requiring intact CRCs and a terminal end marker.
func validateSnapV2(r io.Reader) error {
	sc := newSnapChunkScanner(r)
	for {
		_, end, err := sc.next()
		if err != nil {
			return err
		}
		if end {
			return nil
		}
	}
}

// snapPayloadReader exposes a validated v2 stream's chunk payloads as one
// contiguous io.Reader for streaming decoders.
type snapPayloadReader struct {
	sc   *snapChunkScanner
	rest []byte
	done bool
	err  error
}

func (pr *snapPayloadReader) Read(p []byte) (int, error) {
	for len(pr.rest) == 0 {
		if pr.err != nil {
			return 0, pr.err
		}
		if pr.done {
			return 0, io.EOF
		}
		payload, end, err := pr.sc.next()
		if err != nil {
			pr.err = err
			return 0, err
		}
		if end {
			pr.done = true
			return 0, io.EOF
		}
		pr.rest = payload
	}
	n := copy(p, pr.rest)
	pr.rest = pr.rest[n:]
	return n, nil
}

// restoreSnapshotFile validates the snapshot at path and loads it into
// state: a v2 file is CRC-scanned end to end (end marker required) before a
// byte reaches the state, preserving Restore's all-or-nothing contract, then
// streamed through RestoreStream when the state supports it; a legacy v1
// file goes through the whole-payload path. Any framing damage — truncation
// at any byte offset, bit rot, a missing end marker — is an error, so
// openShard falls back to an older generation.
func restoreSnapshotFile(path string, state ShardState) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	magic := make([]byte, len(snapMagic))
	if n, err := io.ReadFull(f, magic); err != nil || !bytes.Equal(magic, []byte(snapMagic)) {
		// Legacy v1 single-frame snapshot (or a file too short to matter —
		// the v1 reader rejects those). n covers the short-read case where
		// err is ErrUnexpectedEOF.
		_ = n
		payload, err := readSnapshotFile(path)
		if err != nil {
			return err
		}
		return restorePayload(state, payload)
	}
	// Pass 1: validate framing without touching the state.
	if err := validateSnapV2(f); err != nil {
		return err
	}
	if _, err := f.Seek(int64(len(snapMagic)), io.SeekStart); err != nil {
		return err
	}
	// Pass 2: decode. The file was just validated, but the reader still
	// re-checks CRCs — a concurrent modification or short read should fail,
	// not feed garbage to the decoder.
	if sr, ok := state.(StreamRestorer); ok {
		return sr.RestoreStream(&snapPayloadReader{sc: newSnapChunkScanner(f)})
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(&snapPayloadReader{sc: newSnapChunkScanner(f)}); err != nil {
		return err
	}
	return state.Restore(buf.Bytes())
}

func restorePayload(state ShardState, payload []byte) error {
	if sr, ok := state.(StreamRestorer); ok {
		return sr.RestoreStream(bytes.NewReader(payload))
	}
	return state.Restore(payload)
}
