package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// driveConcurrent runs writers goroutines, each journaling perWriter keyed
// records against shard 0, and fails the test on any Mutate error.
func driveConcurrent(t *testing.T, e *Engine, st *kvState, writers, perWriter int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := e.Mutate(0, func() ([]byte, error) {
					st.m[key] = "v"
					return kvRecord(key, "v"), nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent mutate: %v", err)
	}
}

// TestGroupCommitCoalesces: concurrent writers must share commit batches —
// the record/batch ratio is the whole point of the feature. A generous
// linger makes the coalescing deterministic enough to assert on.
func TestGroupCommitCoalesces(t *testing.T) {
	st := newKV()
	e, err := Open(Options{
		Dir: t.TempDir(), Sync: SyncNever, CompactEvery: -1,
		CommitLinger: 20 * time.Millisecond,
	}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers, perWriter = 8, 8
	driveConcurrent(t, e, st, writers, perWriter)

	batches, records := e.shards[0].c.stats()
	if records != writers*perWriter {
		t.Fatalf("committed %d records, want %d", records, writers*perWriter)
	}
	if batches >= records/2 {
		t.Errorf("group commit did not coalesce: %d batches for %d records", batches, records)
	}
}

// TestGroupCommitMaxBatchOne: a batch cap of one record is the
// pre-group-commit baseline — every record pays its own commit.
func TestGroupCommitMaxBatchOne(t *testing.T) {
	st := newKV()
	e, err := Open(Options{
		Dir: t.TempDir(), Sync: SyncNever, CompactEvery: -1, CommitMaxBatch: -1,
	}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	driveConcurrent(t, e, st, 4, 16)
	batches, records := e.shards[0].c.stats()
	if batches != records {
		t.Errorf("batch cap 1: %d batches for %d records, want equal", batches, records)
	}
}

// TestGroupCommitDurableAcks: with fsync=always, every acknowledged record
// must survive an abandon-without-Close crash — group commit must not weaken
// the durability contract while coalescing flushes.
func TestGroupCommitDurableAcks(t *testing.T) {
	dir := t.TempDir()
	st := newKV()
	e, err := Open(Options{Dir: dir, Sync: SyncAlways, CompactEvery: -1}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	driveConcurrent(t, e, st, writers, perWriter)
	// The "crash": never Close or Sync — acks alone must be enough.

	st2 := newKV()
	e2, err := Open(Options{Dir: dir, Sync: SyncAlways, CompactEvery: -1}, []ShardState{st2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if len(st2.m) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(st2.m), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if st2.m[fmt.Sprintf("w%d-k%d", w, i)] != "v" {
				t.Fatalf("acknowledged record w%d-k%d lost", w, i)
			}
		}
	}
}

// TestGroupCommitSurvivesCompaction: log rotation must drain the commit
// queue and re-point it at the fresh generation without losing or
// double-applying records, even with writers in flight.
func TestGroupCommitSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	st := newKV()
	e, err := Open(Options{Dir: dir, Sync: SyncNever, CompactEvery: -1}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var compacts sync.WaitGroup
	compacts.Add(1)
	go func() {
		defer compacts.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := e.Compact(0); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()
	driveConcurrent(t, e, st, 4, 50)
	close(stop)
	compacts.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := newKV()
	e2, err := Open(Options{Dir: dir, Sync: SyncNever, CompactEvery: -1}, []ShardState{st2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if len(st2.m) != 4*50 {
		t.Fatalf("recovered %d records, want %d", len(st2.m), 4*50)
	}
}

// TestGroupCommitPoison: a failed batch must fail every writer in it, and
// every later mutation must fail fast without touching the log.
func TestGroupCommitPoison(t *testing.T) {
	st := newKV()
	e, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever, CompactEvery: -1}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Sabotage the log out from under the shard: the next append must fail.
	if err := e.shards[0].w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Mutate(0, func() ([]byte, error) {
		st.m["a"] = "1"
		return kvRecord("a", "1"), nil
	}); err == nil {
		t.Fatal("append to closed log succeeded")
	}
	// Sticky: later mutations fail before apply runs.
	applied := false
	if err := e.Mutate(0, func() ([]byte, error) {
		applied = true
		return kvRecord("b", "2"), nil
	}); err == nil {
		t.Fatal("poisoned shard accepted a mutation")
	}
	if applied {
		t.Error("apply ran on a poisoned shard")
	}
	if err := e.Compact(0); err == nil {
		t.Error("poisoned shard accepted a compaction")
	}
}
