package storage

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Group commit (DESIGN.md §9). With fsync=always, the naive path pays one
// fsync per mutation per shard, so N concurrent writers to one shard
// serialize behind N flushes. The committer turns that into a leader/follower
// commit queue: Mutate applies its state change under the shard lock,
// enqueues the WAL record, and releases the lock. The first writer to find
// the queue leaderless becomes the commit leader; it drains up to
// CommitMaxBatch queued records, writes them as one frame sequence, fsyncs
// once, and acknowledges every follower in the batch. Writers that arrive
// while a leader is flushing simply queue up and are either absorbed into the
// next batch or promoted to lead it — the fsync latency itself is the
// batching window, so under load N commits coalesce into ~1 flush with no
// timer in the hot path.
//
// The durability contract is unchanged: no Mutate returns success before its
// record is in the WAL under the engine's fsync policy, and WAL order always
// equals apply order (records are enqueued under the shard lock). What did
// change is visibility: the shard lock is no longer held across the fsync, so
// readers may observe a mutation before its writer has been acknowledged —
// the standard group-commit trade, and one the PCI's idempotent profile
// upserts tolerate by design.

// DefaultCommitMaxBatch bounds one group commit when Options doesn't.
const DefaultCommitMaxBatch = 128

// commitSignal wakes a parked follower: either its batch completed (err is
// the batch outcome) or it has been promoted to commit leader.
type commitSignal struct {
	lead bool
	err  error
}

// commitReq is one queued record and its owner's wakeup channel. ch is nil
// for a writer that elected itself leader at enqueue time — nobody ever
// signals it.
type commitReq struct {
	rec []byte
	ch  chan commitSignal
}

// committer is one shard's commit queue. Invariants: queue order is apply
// order; when leading is false the queue is empty (a finishing leader either
// drains it or hands leadership to its head); the WAL is only ever touched by
// the current leader or by a rotation/close path that drained first.
type committer struct {
	mu      sync.Mutex
	idle    *sync.Cond // signalled when the queue empties and no leader runs
	w       *wal       // swapped on rotation (drained first), nil after close
	queue   []*commitReq
	leading bool
	err     error // sticky: a failed batch poisons the shard

	maxBatch int
	linger   time.Duration

	// stats, read by tests and benchmarks
	batches uint64
	records uint64

	m *engineMetrics // set by openShard; nil in direct unit-test construction

	recs [][]byte // leader-only scratch for AppendBatch
}

func newCommitter(w *wal, maxBatch int, linger time.Duration) *committer {
	if maxBatch == 0 {
		maxBatch = DefaultCommitMaxBatch
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	c := &committer{w: w, maxBatch: maxBatch, linger: linger}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// enqueue appends one record to the commit queue. The caller MUST hold the
// owning shard's write lock — that is what makes queue order equal apply
// order. If leader is true the caller must follow up with lead(req) after
// releasing the shard lock; otherwise it must wait on req.ch.
func (c *committer) enqueue(rec []byte) (req *commitReq, leader bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, false, c.err
	}
	req = &commitReq{rec: rec}
	if c.leading {
		req.ch = make(chan commitSignal, 1)
	} else {
		c.leading = true
		leader = true
	}
	c.queue = append(c.queue, req)
	return req, leader, nil
}

// commitWait parks until the caller's record is durable (or the shard is
// poisoned), leading a batch itself if promoted.
func (c *committer) commitWait(req *commitReq, leader bool) error {
	if leader {
		return c.lead(req)
	}
	sig := <-req.ch
	if sig.lead {
		return c.lead(req)
	}
	return sig.err
}

// lead runs one group commit with own at the head of the queue, returning
// own's outcome. Followers in the batch are acknowledged; a leftover queue
// has its head promoted to leader.
func (c *committer) lead(own *commitReq) error {
	// Yield once before gathering: writers that are already runnable on this
	// core get to enqueue and join the batch. Without this, on few-core hosts
	// the fsync never opens a batching window — the flush occupies the only P
	// in a syscall, and a just-promoted leader outruns the writers its
	// predecessor acknowledged — so grouping degrades to batches of one. Costs
	// one scheduler round-trip (~100ns when nothing else is runnable).
	if c.maxBatch > 1 {
		runtime.Gosched()
	}

	if c.linger > 0 {
		c.mu.Lock()
		short := len(c.queue) < c.maxBatch
		c.mu.Unlock()
		if short {
			time.Sleep(c.linger)
		}
	}

	c.mu.Lock()
	if c.err != nil {
		// Poisoned while we queued: fail everything fast, journal nothing.
		q, err := c.queue, c.err
		c.queue = nil
		c.leading = false
		c.idle.Broadcast()
		c.mu.Unlock()
		for _, r := range q {
			if r != own {
				r.ch <- commitSignal{err: err}
			}
		}
		return err
	}
	n := min(len(c.queue), c.maxBatch)
	batch := c.queue[:n:n]
	c.queue = c.queue[n:]
	w := c.w
	c.recs = c.recs[:0]
	for _, r := range batch {
		c.recs = append(c.recs, r.rec)
	}
	recs := c.recs
	c.mu.Unlock()

	var err error
	if w != nil { // nil after close: acknowledged but unjournaled, as before
		err = w.AppendBatch(recs)
	}

	c.mu.Lock()
	if err != nil && c.err == nil {
		c.err = fmt.Errorf("storage: shard poisoned by journal failure: %w", err)
		if c.m != nil {
			c.m.shardsPoisoned.Inc()
		}
	}
	c.batches++
	c.records += uint64(len(batch))
	if c.m != nil {
		c.m.commitBatches.Inc()
		c.m.commitRecords.Add(uint64(len(batch)))
		c.m.commitBatchSize.Observe(int64(len(batch)))
	}
	var next *commitReq
	if len(c.queue) > 0 {
		next = c.queue[0]
	} else {
		c.queue = nil
		c.leading = false
		c.idle.Broadcast()
	}
	c.mu.Unlock()

	for _, r := range batch {
		if r != own {
			r.ch <- commitSignal{err: err}
		}
	}
	if next != nil {
		next.ch <- commitSignal{lead: true}
	}
	return err
}

// drain blocks until the queue is empty and no leader is committing, then
// returns the sticky error. Callers hold the shard write lock, which blocks
// new enqueues, so drain terminates; the in-flight leader needs only c.mu and
// the WAL to finish, never the shard lock.
func (c *committer) drain() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 || c.leading {
		c.idle.Wait()
	}
	return c.err
}

// setWAL swaps the log the next batch writes to. Only called on a drained
// committer under the shard write lock (rotation and close).
func (c *committer) setWAL(w *wal) {
	c.mu.Lock()
	c.w = w
	c.mu.Unlock()
}

// stickyErr reports the poison state.
func (c *committer) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// stats reports how many batches and records have been committed — the
// records/batches ratio is the measured group-commit coalescing factor.
func (c *committer) stats() (batches, records uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.records
}
