package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ShardState is the in-memory state of one shard. The engine journals
// mutations the owner hands it and replays them through Apply on recovery;
// Snapshot/Restore bound replay length via compaction. Restore must be
// all-or-nothing: on error the previous state must be intact (decode into
// fresh structures, then install).
type ShardState interface {
	// Apply replays one journaled record against the state.
	Apply(rec []byte) error
	// Snapshot encodes the full state.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a decoded snapshot.
	Restore(snap []byte) error
}

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; one subdirectory per shard. Empty means
	// memory-only: per-shard locking with no WAL, no snapshots — the mode
	// simulations and unit tests run in.
	Dir string
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// CompactEvery triggers a snapshot + log rotation after this many
	// records on a shard (default 4096; negative disables auto-compaction).
	CompactEvery int
	// CommitMaxBatch caps how many queued records one group commit may write
	// and fsync as a single batch (default DefaultCommitMaxBatch). Negative
	// disables grouping entirely: every record pays its own write+fsync —
	// the pre-group-commit behavior, kept as a benchmark baseline.
	CommitMaxBatch int
	// CommitLinger is how long a commit leader with a less-than-full batch
	// waits for stragglers before flushing. The default 0 is right for
	// fsync=always, where the flush latency itself is the batching window;
	// a linger only pays off when flushes are nearly free (fsync=never) and
	// coalescing Write syscalls still matters.
	CommitLinger time.Duration
	// Metrics is the registry the engine's storage_* families register in.
	// Nil means the process-wide obs.Default() registry (what /metrics
	// serves); tests inject their own for exact delta assertions.
	Metrics *obs.Registry
	// Repl, when set, receives every journaled record for shipment to a
	// replica (see internal/cluster). Enqueue runs under the shard lock —
	// the same critical section that fixes WAL order — so ship order per
	// shard equals WAL order equals apply order. Records applied through
	// ApplyShipped (i.e. records that are themselves replicas) bypass the
	// sink: replication is one hop, never a chain.
	Repl ReplSink
}

// ReplSink is the engine's replication hook. Implementations live in
// internal/cluster; the engine only guarantees ordering and calls Wait for
// semi-synchronous acknowledgement after the record is locally durable.
type ReplSink interface {
	// Enqueue registers one journaled record for shipment and returns a
	// token for Wait. Called under the shard's write lock: it must be fast
	// and must not block on I/O.
	Enqueue(shard int, rec []byte) uint64
	// Wait blocks until the token's record is acknowledged by the replica,
	// or the sink has degraded to asynchronous shipping (replica down).
	Wait(token uint64)
}

// DefaultSyncEvery is the SyncInterval period when none is given.
const DefaultSyncEvery = 100 * time.Millisecond

// DefaultCompactEvery is the auto-compaction threshold when none is given.
const DefaultCompactEvery = 4096

// manifestName is the engine's layout descriptor inside Dir. It pins the
// shard count: reopening with a different count would hash keys to the
// wrong shards, so Open fails loudly on a mismatch.
const manifestName = "MANIFEST.json"

type manifest struct {
	Shards int `json:"shards"`
}

// ReadManifest reports the shard count a data directory was created with.
// ok is false when the directory has no manifest (fresh or memory-only).
func ReadManifest(dir string) (shards int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, false, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if m.Shards <= 0 {
		return 0, false, fmt.Errorf("storage: manifest declares %d shards", m.Shards)
	}
	return m.Shards, true, nil
}

// shard pairs one ShardState with its lock and its log generation.
// Generation N means: snapshot-N (absent for N=0 on a fresh shard) holds
// the state as of rotation N, and wal-N holds every mutation since.
//
// mu protects the state and the WAL handle/generation bookkeeping; the WAL
// file itself is written by the committer's group-commit leader, outside mu,
// so a slow fsync never blocks readers. The sticky poison error lives on the
// committer (the only component that can fail an append).
type shard struct {
	mu    sync.RWMutex
	state ShardState
	dir   string // "" in memory-only mode
	seq   uint64
	w     *wal
	c     *committer // nil in memory-only mode
	since int        // records appended since the last snapshot
	// pending holds replica records journaled via AppendShipped but not yet
	// replayed into state; materializeLocked drains it before any snapshot.
	pending [][]byte
	m       *engineMetrics
}

// sticky reports the shard's poison state: a failed journal append leaves
// memory and log diverged, which cannot be repaired in place, so every later
// mutation fails fast.
func (s *shard) sticky() error {
	if s.c == nil {
		return nil
	}
	return s.c.stickyErr()
}

// Engine is the sharded storage engine. Each shard has its own lock and its
// own WAL, so mutations on different shards never serialize against each
// other — the property the PCI's per-user keyspace layout exploits.
type Engine struct {
	opts   Options
	shards []*shard
}

// Open builds an engine over the given shard states, recovering each shard
// from Dir (snapshot load, WAL replay, torn-tail truncation, stale-file
// cleanup). The states are mutated in place during recovery. With an empty
// Dir the engine is memory-only.
func Open(opts Options, states []ShardState) (*Engine, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("storage: need at least one shard")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	m := newEngineMetrics(opts.Metrics)
	e := &Engine{opts: opts, shards: make([]*shard, len(states))}
	if opts.Dir == "" {
		for i, st := range states {
			e.shards[i] = &shard{state: st, m: m}
		}
		return e, nil
	}

	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	if n, ok, err := ReadManifest(opts.Dir); err != nil {
		return nil, err
	} else if ok && n != len(states) {
		return nil, fmt.Errorf("storage: data dir %s was created with %d shards, engine opened with %d", opts.Dir, n, len(states))
	} else if !ok {
		data, err := json.Marshal(manifest{Shards: len(states)})
		if err != nil {
			return nil, err
		}
		if err := writeFileAtomic(filepath.Join(opts.Dir, manifestName), data, 0o644); err != nil {
			return nil, fmt.Errorf("storage: write manifest: %w", err)
		}
	}

	for i, st := range states {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", i))
		sh, err := openShard(dir, st, opts, m)
		if err != nil {
			e.closePartial(i)
			return nil, fmt.Errorf("storage: shard %d: %w", i, err)
		}
		e.shards[i] = sh
	}
	return e, nil
}

func (e *Engine) closePartial(n int) {
	for _, sh := range e.shards[:n] {
		if sh != nil && sh.w != nil {
			sh.w.Close()
		}
	}
}

func snapName(seq uint64) string { return fmt.Sprintf("snapshot-%016d.snap", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }

// openShard recovers one shard directory:
//
//  1. delete leftover *.tmp files (a crash mid-snapshot-write);
//  2. pick the highest sequence whose snapshot is intact (CRC-framed and
//     restorable) — or sequence 0 with no snapshot on a fresh shard;
//  3. restore it and replay wal-<seq>, truncating any torn tail;
//  4. delete files of every other sequence (a crash between "new snapshot
//     durable" and "old generation deleted" leaves them behind; their
//     content is subsumed by the chosen snapshot);
//  5. reopen wal-<seq> for appending.
func openShard(dir string, state ShardState, opts Options, m *engineMetrics) (*shard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapSeqs, walSeqs []uint64
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			if seq, err := parseSeq(name, "snapshot-", ".snap"); err == nil {
				snapSeqs = append(snapSeqs, seq)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, err := parseSeq(name, "wal-", ".log"); err == nil {
				walSeqs = append(walSeqs, seq)
			}
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })

	var seq uint64
	restored := false
	for _, s := range snapSeqs {
		payload, err := readSnapshotFile(filepath.Join(dir, snapName(s)))
		if err != nil {
			continue // corrupt or unreadable: fall back to an older generation
		}
		if err := state.Restore(payload); err != nil {
			continue
		}
		seq, restored = s, true
		break
	}
	if !restored {
		// Fresh shard (or no usable snapshot): replay the oldest WAL on
		// disk — by construction wal-N is only created after snapshot-N is
		// durable, so with no snapshot the oldest WAL is genesis history.
		seq = 0
		for i, s := range walSeqs {
			if i == 0 || s < seq {
				seq = s
			}
		}
	}

	if m == nil {
		m = newEngineMetrics(nil)
	}
	sh := &shard{state: state, dir: dir, seq: seq, m: m}
	replayed, torn, err := replayWAL(filepath.Join(dir, walName(seq)), state.Apply)
	if err != nil {
		return nil, err
	}
	sh.since = replayed
	m.replayRecords.Add(uint64(replayed))
	if torn {
		m.replayTornTails.Inc()
	}

	// Sweep every other generation.
	for _, s := range snapSeqs {
		if s != seq {
			os.Remove(filepath.Join(dir, snapName(s)))
		}
	}
	for _, s := range walSeqs {
		if s != seq {
			os.Remove(filepath.Join(dir, walName(s)))
		}
	}

	w, err := createWAL(filepath.Join(dir, walName(seq)), opts.Sync, opts.SyncEvery, m)
	if err != nil {
		return nil, err
	}
	if err := syncDir(w.path); err != nil {
		w.Close()
		return nil, err
	}
	sh.w = w
	sh.c = newCommitter(w, opts.CommitMaxBatch, opts.CommitLinger)
	sh.c.m = m
	return sh, nil
}

func parseSeq(name, prefix, suffix string) (uint64, error) {
	var seq uint64
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if _, err := fmt.Sscanf(body, "%d", &seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// readSnapshotFile validates and unwraps a CRC-framed snapshot.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeaderSize {
		return nil, fmt.Errorf("storage: snapshot too short")
	}
	ln := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if int(ln) != len(data)-frameHeaderSize {
		return nil, fmt.Errorf("storage: snapshot length mismatch")
	}
	payload := data[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("storage: snapshot checksum mismatch")
	}
	return payload, nil
}

func frameSnapshot(payload []byte) []byte {
	out := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderSize:], payload)
	return out
}

// NumShards reports the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Durable reports whether the engine journals to disk.
func (e *Engine) Durable() bool { return e.opts.Dir != "" }

// Mutate runs one mutation on shard i: apply mutates the in-memory state
// under the shard's write lock and returns the record to journal (nil to
// skip journaling, e.g. when the mutation turned out to be a no-op). The
// record is enqueued on the shard's group-commit queue while the lock is
// still held — WAL order therefore equals apply order — and the call is
// acknowledged only after a commit batch containing the record is in the
// WAL under the engine's fsync policy (see commit.go). Concurrent writers
// to one shard coalesce into shared write+fsync batches instead of paying
// one flush each. A failed batch poisons the shard — the memory/log
// divergence cannot be repaired in place, so every later mutation fails
// fast.
func (e *Engine) Mutate(i int, apply func() ([]byte, error)) error {
	return e.mutate(i, apply, true)
}

// ApplyShipped journals one replicated record on shard i verbatim: the
// record bytes another node's engine produced are applied through the
// shard state's replay path and appended to this engine's WAL unchanged,
// which is what makes a caught-up follower's on-disk shards byte-identical
// to the primary's. Shipped records are not re-enqueued on the replication
// sink — replication is a single hop.
func (e *Engine) ApplyShipped(i int, rec []byte) error {
	return e.mutate(i, func() ([]byte, error) {
		if err := e.shards[i].state.Apply(rec); err != nil {
			return nil, err
		}
		return rec, nil
	}, false)
}

// AppendShipped journals one replicated record on shard i without replaying
// it into the in-memory state: what a follower owes the primary at ack time
// is durability, and deferring the replay drops most of the CPU a replica
// spends per record. Parked records are drained through the state's replay
// path before the next snapshot (compaction or close) and on Materialize —
// promotion calls the latter before serving reads over replicated users.
// The resulting WAL bytes and snapshots are identical to the eager
// ApplyShipped path: WAL order is append order either way, and shipped
// records only touch users the sending primary owns — disjoint from this
// node's locally-written keys — so the deferred replay commutes with local
// mutations. In memory-only mode there is no WAL to defer behind, so the
// record is applied eagerly.
func (e *Engine) AppendShipped(i int, rec []byte) error {
	s := e.shards[i]
	s.mu.Lock()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.w == nil {
		err := s.state.Apply(rec)
		s.mu.Unlock()
		return err
	}
	req, leader, err := s.c.enqueue(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.pending = append(s.pending, rec)
	s.since++
	compact := e.opts.CompactEvery > 0 && s.since >= e.opts.CompactEvery
	s.mu.Unlock()

	if err := s.c.commitWait(req, leader); err != nil {
		return err
	}
	if compact {
		e.compactIfDue(i)
	}
	return nil
}

// AppendShippedBatch journals a run of replicated records on shard i with
// one group-commit wait for the whole run: every record is enqueued on the
// committer under a single shard-lock hold (so WAL order is the run's
// order), and only then does the caller park on the commit signals — the
// first enqueue's leader drains the entire run into as few fsync batches
// as CommitMaxBatch allows, instead of each record paying its own commit
// cycle (and, with a non-zero CommitLinger, its own full linger). The
// durability contract is AppendShipped's: when the call returns nil, every
// record in the run is in the WAL under the engine's fsync policy.
func (e *Engine) AppendShippedBatch(i int, recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	s := e.shards[i]
	s.mu.Lock()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.w == nil {
		for _, rec := range recs {
			if err := s.state.Apply(rec); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
		return nil
	}
	reqs := make([]*commitReq, 0, len(recs))
	leaders := make([]bool, 0, len(recs))
	var enqErr error
	for _, rec := range recs {
		req, leader, err := s.c.enqueue(rec)
		if err != nil {
			// Poisoned mid-run: stop enqueueing, but still wait on what was
			// enqueued — a leader among them must run its batch (which will
			// fail fast) or the queue would stall forever.
			enqErr = err
			break
		}
		reqs = append(reqs, req)
		leaders = append(leaders, leader)
		s.pending = append(s.pending, rec)
		s.since++
	}
	compact := e.opts.CompactEvery > 0 && s.since >= e.opts.CompactEvery
	s.mu.Unlock()

	var firstErr error
	for j, req := range reqs {
		if err := s.c.commitWait(req, leaders[j]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if enqErr != nil {
		return enqErr
	}
	if firstErr != nil {
		return firstErr
	}
	if compact {
		e.compactIfDue(i)
	}
	return nil
}

// Materialize replays shard i's parked replica records (see AppendShipped)
// into the in-memory state.
func (e *Engine) Materialize(i int) error {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materializeLocked()
}

// MaterializeAll replays every shard's parked replica records; the first
// error is returned but all shards are attempted.
func (e *Engine) MaterializeAll() error {
	var firstErr error
	for i := range e.shards {
		if err := e.Materialize(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// materializeLocked drains the pending replica records in append order. On
// error the already-applied prefix is dropped and the failing record kept,
// so a retry does not double-apply.
func (s *shard) materializeLocked() error {
	for len(s.pending) > 0 {
		if err := s.state.Apply(s.pending[0]); err != nil {
			return fmt.Errorf("storage: materialize shipped record: %w", err)
		}
		s.pending = s.pending[1:]
	}
	s.pending = nil
	return nil
}

// ApplyRecord journals one pre-encoded record on shard i through the full
// primary mutation path: applied via the shard state's replay path, written
// to the WAL, and enqueued on the replication sink like any local write.
// Cluster handoff imports use it — a handed-off user's records must ship
// onward to the importing node's own follower, unlike ApplyShipped records.
func (e *Engine) ApplyRecord(i int, rec []byte) error {
	return e.mutate(i, func() ([]byte, error) {
		if err := e.shards[i].state.Apply(rec); err != nil {
			return nil, err
		}
		return rec, nil
	}, true)
}

func (e *Engine) mutate(i int, apply func() ([]byte, error), ship bool) error {
	s := e.shards[i]
	s.mu.Lock()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	rec, err := apply()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if rec == nil {
		s.mu.Unlock()
		return nil
	}
	var rtok uint64
	if ship && e.opts.Repl != nil {
		// Under the lock: per-shard ship order is frozen to WAL order here.
		rtok = e.opts.Repl.Enqueue(i, rec)
	}
	if s.w == nil {
		s.mu.Unlock()
		if rtok != 0 {
			e.opts.Repl.Wait(rtok)
		}
		return nil
	}
	req, leader, err := s.c.enqueue(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.since++
	compact := e.opts.CompactEvery > 0 && s.since >= e.opts.CompactEvery
	s.mu.Unlock()

	if err := s.c.commitWait(req, leader); err != nil {
		return err
	}
	if rtok != 0 {
		// Semi-synchronous replication: acknowledge the caller only after
		// the record is durable locally AND the follower has acked it (or
		// the sink degraded because the follower is unreachable).
		e.opts.Repl.Wait(rtok)
	}
	if compact {
		// Best-effort: the record is already durable in the WAL; a failed
		// compaction just means a longer replay on the next boot.
		e.compactIfDue(i)
	}
	return nil
}

// compactIfDue compacts shard i if it is still over the auto-compaction
// threshold. Several writers can cross the threshold while one batch is in
// flight; re-checking under the lock makes exactly one of them do the work.
func (e *Engine) compactIfDue(i int) {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sticky() != nil || s.since < e.opts.CompactEvery {
		return
	}
	if err := s.compactLocked(e.opts); err != nil {
		// Resetting the counter spaces retries instead of attempting on
		// every append.
		s.since = 0
	}
}

// View runs read under shard i's read lock. The callback must not retain
// references to state internals beyond the call.
func (e *Engine) View(i int, read func()) {
	s := e.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	read()
}

// compactLocked rotates the shard to a new generation: write snapshot-(N+1)
// durably (temp + rename + dir fsync), switch appends to a fresh wal-(N+1),
// then delete generation N. A crash at any point leaves a recoverable
// layout; openShard's sweep finishes the job.
//
// The commit queue is drained first: every queued record was applied to the
// state before enqueue (and so is captured by the snapshot), but its waiter
// is parked on an fsync of the old log, which must complete before the log
// can be retired. New enqueues are blocked for the duration by the shard
// write lock the caller holds.
func (s *shard) compactLocked(opts Options) error {
	if s.w == nil {
		return nil
	}
	if err := s.c.drain(); err != nil {
		// Poisoned: the in-memory state includes mutations the log rejected;
		// snapshotting would persist the divergence as truth.
		return err
	}
	if err := s.materializeLocked(); err != nil {
		// Snapshotting now would drop the parked records when the old WAL
		// (the only durable copy) is retired below.
		return err
	}
	start := time.Now()
	payload, err := s.state.Snapshot()
	if err != nil {
		return fmt.Errorf("storage: encode snapshot: %w", err)
	}
	next := s.seq + 1
	snapPath := filepath.Join(s.dir, snapName(next))
	if err := writeFileAtomic(snapPath, frameSnapshot(payload), 0o644); err != nil {
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	w, err := createWAL(filepath.Join(s.dir, walName(next)), s.w.policy, s.w.every, s.m)
	if err != nil {
		return err
	}
	if err := syncDir(w.path); err != nil {
		w.Close()
		return err
	}
	old := s.w
	oldSeq := s.seq
	s.w, s.seq, s.since = w, next, 0
	s.c.setWAL(w)
	old.Close()
	os.Remove(filepath.Join(s.dir, walName(oldSeq)))
	os.Remove(filepath.Join(s.dir, snapName(oldSeq)))
	s.m.compactions.Inc()
	s.m.compactionDur.ObserveDuration(time.Since(start))
	return nil
}

// Compact snapshots shard i and truncates its log.
func (e *Engine) Compact(i int) error {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sticky(); err != nil {
		return err
	}
	return s.compactLocked(e.opts)
}

// CompactAll snapshots every shard; the first error is returned but all
// shards are attempted.
func (e *Engine) CompactAll() error {
	var firstErr error
	for i := range e.shards {
		if err := e.Compact(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync drains every shard's commit queue and forces its WAL to stable
// storage (a checkpoint for SyncInterval / SyncNever policies).
func (e *Engine) Sync() error {
	var firstErr error
	for _, s := range e.shards {
		s.mu.Lock()
		if s.w != nil {
			if err := s.c.drain(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else if err := s.w.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
	}
	return firstErr
}

// Close compacts (so the next boot replays nothing), syncs, and closes every
// shard. The engine must not be used afterwards.
func (e *Engine) Close() error {
	var firstErr error
	for i, s := range e.shards {
		s.mu.Lock()
		if s.w != nil {
			if s.sticky() == nil && s.since > 0 {
				if err := s.compactLocked(e.opts); err != nil && firstErr == nil {
					firstErr = err
				}
			} else {
				// Poisoned or already compact: still flush whatever the
				// queue holds before the log closes.
				s.c.drain()
			}
			s.c.setWAL(nil) // late mutations are acknowledged but unjournaled, as before
			if err := s.w.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("storage: close shard %d: %w", i, err)
			}
			s.w = nil
		}
		s.mu.Unlock()
	}
	return firstErr
}
