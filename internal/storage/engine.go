package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ShardState is the in-memory state of one shard. The engine journals
// mutations the owner hands it and replays them through Apply on recovery;
// Snapshot/Restore bound replay length via compaction. Restore must be
// all-or-nothing: on error the previous state must be intact (decode into
// fresh structures, then install).
type ShardState interface {
	// Apply replays one journaled record against the state.
	Apply(rec []byte) error
	// Snapshot encodes the full state.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a decoded snapshot.
	Restore(snap []byte) error
}

// SnapshotViewer is an optional ShardState extension for off-lock snapshots
// (DESIGN.md §16). SnapshotView captures a consistent, immutable view of the
// state cheaply — shallow clones / copy-on-write, not a full encode — and
// returns an encoder over that view plus a release function. It is called
// under the shard write lock and must be fast; the engine then invokes
// encode at most once, off the lock, while writers mutate the live state on
// the next WAL generation, and calls release exactly once when the view is
// no longer needed (whether or not encode ran or succeeded). encode must
// produce exactly the bytes Snapshot would have produced at capture time —
// recovery and the cluster's byte-identical-directory equivalence depend on
// it. States that do not implement the extension keep the legacy in-lock
// encode path.
type SnapshotViewer interface {
	SnapshotView() (encode func(io.Writer) error, release func(), err error)
}

// StreamRestorer is an optional ShardState extension that decodes a snapshot
// straight from a validated reader instead of one whole-state []byte, so
// restoring a large shard never doubles its memory. The same all-or-nothing
// contract as Restore applies: on error the previous state must be intact.
// The engine fully CRC-validates the snapshot file before the first byte
// reaches RestoreStream.
type StreamRestorer interface {
	RestoreStream(r io.Reader) error
}

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; one subdirectory per shard. Empty means
	// memory-only: per-shard locking with no WAL, no snapshots — the mode
	// simulations and unit tests run in.
	Dir string
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// CompactEvery triggers a snapshot + log rotation after this many
	// records on a shard (default 4096; negative disables auto-compaction).
	CompactEvery int
	// CommitMaxBatch caps how many queued records one group commit may write
	// and fsync as a single batch (default DefaultCommitMaxBatch). Negative
	// disables grouping entirely: every record pays its own write+fsync —
	// the pre-group-commit behavior, kept as a benchmark baseline.
	CommitMaxBatch int
	// CommitLinger is how long a commit leader with a less-than-full batch
	// waits for stragglers before flushing. The default 0 is right for
	// fsync=always, where the flush latency itself is the batching window;
	// a linger only pays off when flushes are nearly free (fsync=never) and
	// coalescing Write syscalls still matters.
	CommitLinger time.Duration
	// Metrics is the registry the engine's storage_* families register in.
	// Nil means the process-wide obs.Default() registry (what /metrics
	// serves); tests inject their own for exact delta assertions.
	Metrics *obs.Registry
	// RecoverWorkers bounds how many shards Open recovers — and Close /
	// MaterializeAll / CompactAll process — concurrently. 0 means
	// min(shards, max(2, GOMAXPROCS)); 1 forces the serial behavior
	// (benchmark baseline). Boot therefore costs roughly the largest shard,
	// not the sum of all shards.
	RecoverWorkers int
	// Repl, when set, receives every journaled record for shipment to a
	// replica (see internal/cluster). Enqueue runs under the shard lock —
	// the same critical section that fixes WAL order — so ship order per
	// shard equals WAL order equals apply order. Records applied through
	// ApplyShipped (i.e. records that are themselves replicas) bypass the
	// sink: replication is one hop, never a chain.
	Repl ReplSink
}

// ReplSink is the engine's replication hook. Implementations live in
// internal/cluster; the engine only guarantees ordering and calls Wait for
// semi-synchronous acknowledgement after the record is locally durable.
type ReplSink interface {
	// Enqueue registers one journaled record for shipment and returns a
	// token for Wait. Called under the shard's write lock: it must be fast
	// and must not block on I/O.
	Enqueue(shard int, rec []byte) uint64
	// Wait blocks until the token's record is acknowledged by the replica,
	// or the sink has degraded to asynchronous shipping (replica down).
	Wait(token uint64)
}

// DefaultSyncEvery is the SyncInterval period when none is given.
const DefaultSyncEvery = 100 * time.Millisecond

// DefaultCompactEvery is the auto-compaction threshold when none is given.
const DefaultCompactEvery = 4096

// manifestName is the engine's layout descriptor inside Dir. It pins the
// shard count: reopening with a different count would hash keys to the
// wrong shards, so Open fails loudly on a mismatch.
const manifestName = "MANIFEST.json"

type manifest struct {
	Shards int `json:"shards"`
}

// ReadManifest reports the shard count a data directory was created with.
// ok is false when the directory has no manifest (fresh or memory-only).
func ReadManifest(dir string) (shards int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, false, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if m.Shards <= 0 {
		return 0, false, fmt.Errorf("storage: manifest declares %d shards", m.Shards)
	}
	return m.Shards, true, nil
}

// shard pairs one ShardState with its lock and its log generations.
// Appends go to wal-<seq>; base is the oldest generation still on disk.
// Steady state is base == seq: snapshot-<seq> (absent for seq 0 on a fresh
// shard) holds the state as of rotation seq and wal-<seq> every mutation
// since. While an off-lock snapshot persist is in flight (compacting true),
// base < seq and the durable state is snapshot-<base> plus the contiguous
// WAL chain wal-<base> .. wal-<seq>; recovery replays exactly that chain.
//
// mu protects the state and the WAL handle/generation bookkeeping; the WAL
// file itself is written by the committer's group-commit leader, outside mu,
// so a slow fsync never blocks readers. The sticky poison error lives on the
// committer (the only component that can fail an append).
type shard struct {
	mu    sync.RWMutex
	state ShardState
	dir   string // "" in memory-only mode
	seq   uint64
	base  uint64
	w     *wal
	c     *committer // nil in memory-only mode
	since int        // records appended since the last rotation
	// compacting marks an in-flight off-lock snapshot persist; at most one
	// per shard. compactCond (on mu) wakes waiters when it clears.
	compacting  bool
	compactCond *sync.Cond
	// pending holds replica records journaled via AppendShipped but not yet
	// replayed into state; materializeLocked drains it before any snapshot.
	pending [][]byte
	m       *engineMetrics
}

// waitCompactLocked blocks (releasing mu) until no snapshot persist is in
// flight. Caller holds mu.
func (s *shard) waitCompactLocked() {
	for s.compacting {
		s.compactCond.Wait()
	}
}

// sticky reports the shard's poison state: a failed journal append leaves
// memory and log diverged, which cannot be repaired in place, so every later
// mutation fails fast.
func (s *shard) sticky() error {
	if s.c == nil {
		return nil
	}
	return s.c.stickyErr()
}

// Engine is the sharded storage engine. Each shard has its own lock and its
// own WAL, so mutations on different shards never serialize against each
// other — the property the PCI's per-user keyspace layout exploits.
type Engine struct {
	opts   Options
	shards []*shard
}

// Open builds an engine over the given shard states, recovering each shard
// from Dir (snapshot load, WAL replay, torn-tail truncation, stale-file
// cleanup). The states are mutated in place during recovery. With an empty
// Dir the engine is memory-only.
func Open(opts Options, states []ShardState) (*Engine, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("storage: need at least one shard")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	m := newEngineMetrics(opts.Metrics)
	e := &Engine{opts: opts, shards: make([]*shard, len(states))}
	if opts.Dir == "" {
		for i, st := range states {
			sh := &shard{state: st, m: m}
			sh.compactCond = sync.NewCond(&sh.mu)
			e.shards[i] = sh
		}
		return e, nil
	}

	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	if n, ok, err := ReadManifest(opts.Dir); err != nil {
		return nil, err
	} else if ok && n != len(states) {
		return nil, fmt.Errorf("storage: data dir %s was created with %d shards, engine opened with %d", opts.Dir, n, len(states))
	} else if !ok {
		data, err := json.Marshal(manifest{Shards: len(states)})
		if err != nil {
			return nil, err
		}
		if err := writeFileAtomic(filepath.Join(opts.Dir, manifestName), data, 0o644); err != nil {
			return nil, fmt.Errorf("storage: write manifest: %w", err)
		}
	}

	// Recover shards concurrently: each shard's snapshot restore + WAL
	// replay is independent, so boot costs roughly the largest shard, not
	// the sum. First error (by shard index, for determinism) wins; every
	// shard that did open is closed again on failure.
	workers := e.workerCount()
	errs := make([]error, len(states))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, st := range states {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, st ShardState) {
			defer func() { <-sem; wg.Done() }()
			dir := filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", i))
			sh, err := openShard(dir, st, opts, m)
			if err != nil {
				errs[i] = fmt.Errorf("storage: shard %d: %w", i, err)
				return
			}
			e.shards[i] = sh
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			e.closeOpened()
			return nil, err
		}
	}
	return e, nil
}

// workerCount resolves Options.RecoverWorkers against the shard count.
func (e *Engine) workerCount() int {
	w := e.opts.RecoverWorkers
	if w <= 0 {
		w = max(2, runtime.GOMAXPROCS(0))
	}
	return min(w, len(e.shards))
}

// closeOpened releases the WAL handles of whichever shards a failed Open
// managed to recover.
func (e *Engine) closeOpened() {
	for _, sh := range e.shards {
		if sh != nil && sh.w != nil {
			sh.w.Close()
		}
	}
}

// forEachShard runs fn(i) on every shard through a bounded worker pool. All
// shards are attempted; the first error by shard index is returned.
func (e *Engine) forEachShard(fn func(i int) error) error {
	workers := e.workerCount()
	if workers <= 1 {
		var firstErr error
		for i := range e.shards {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range e.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func snapName(seq uint64) string { return fmt.Sprintf("snapshot-%016d.snap", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }

// openShard recovers one shard directory:
//
//  1. delete leftover *.tmp files (a crash mid-snapshot-write);
//  2. pick the highest sequence whose snapshot is intact (CRC-validated end
//     to end, end marker present, restorable) — or sequence 0 with no
//     snapshot on a fresh shard;
//  3. restore it and replay the contiguous WAL chain wal-<seq>,
//     wal-<seq+1>, ... in order, truncating a torn final tail — a crash
//     during an off-lock snapshot persist leaves the retained wal-<N> plus
//     the live wal-<N+1>, and both replay;
//  4. delete files outside the chosen chain (stale generations a crash left
//     behind; their content is subsumed by the chosen snapshot + chain);
//  5. reopen the chain's last WAL for appending.
func openShard(dir string, state ShardState, opts Options, m *engineMetrics) (*shard, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapSeqs, walSeqs []uint64
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			if seq, err := parseSeq(name, "snapshot-", ".snap"); err == nil {
				snapSeqs = append(snapSeqs, seq)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, err := parseSeq(name, "wal-", ".log"); err == nil {
				walSeqs = append(walSeqs, seq)
			}
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })

	var base uint64
	restored := false
	for _, s := range snapSeqs {
		if err := restoreSnapshotFile(filepath.Join(dir, snapName(s)), state); err != nil {
			continue // corrupt, truncated, or unrestorable: fall back
		}
		base, restored = s, true
		break
	}
	if !restored {
		// Fresh shard (or no usable snapshot): start the chain at the oldest
		// WAL on disk — by construction wal-N is only created after
		// snapshot-N is durable, so with no snapshot the oldest WAL is
		// genesis history.
		base = 0
		for i, s := range walSeqs {
			if i == 0 || s < base {
				base = s
			}
		}
	}

	if m == nil {
		m = newEngineMetrics(nil)
	}
	sh := &shard{state: state, dir: dir, seq: base, base: base, m: m}
	sh.compactCond = sync.NewCond(&sh.mu)

	// Replay the contiguous WAL chain starting at base. wal-<base> may be
	// absent (fresh shard); any later gap ends the chain. A torn non-final
	// log means the suffix the later logs extend was lost, so the chain
	// stops there too — replay always yields a prefix-consistent state.
	onDisk := make(map[uint64]bool, len(walSeqs))
	for _, s := range walSeqs {
		onDisk[s] = true
	}
	seq := base
	for k := base; ; k++ {
		if k > base && !onDisk[k] {
			break
		}
		replayed, torn, err := replayWAL(filepath.Join(dir, walName(k)), state.Apply)
		if err != nil {
			return nil, err
		}
		seq = k
		sh.since += replayed
		m.replayRecords.Add(uint64(replayed))
		if torn {
			m.replayTornTails.Inc()
			break
		}
	}
	sh.seq = seq

	// Sweep everything outside snapshot-<base> + wal-[base..seq].
	for _, s := range snapSeqs {
		if s != base {
			os.Remove(filepath.Join(dir, snapName(s)))
		}
	}
	for _, s := range walSeqs {
		if s < base || s > seq {
			os.Remove(filepath.Join(dir, walName(s)))
		}
	}

	w, err := createWAL(filepath.Join(dir, walName(seq)), opts.Sync, opts.SyncEvery, m)
	if err != nil {
		return nil, err
	}
	if err := syncDir(w.path); err != nil {
		w.Close()
		return nil, err
	}
	sh.w = w
	sh.c = newCommitter(w, opts.CommitMaxBatch, opts.CommitLinger)
	sh.c.m = m
	m.bootRecoverDur.ObserveDuration(time.Since(start))
	return sh, nil
}

func parseSeq(name, prefix, suffix string) (uint64, error) {
	var seq uint64
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if _, err := fmt.Sscanf(body, "%d", &seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// readSnapshotFile validates and unwraps a CRC-framed snapshot.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeaderSize {
		return nil, fmt.Errorf("storage: snapshot too short")
	}
	ln := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if int(ln) != len(data)-frameHeaderSize {
		return nil, fmt.Errorf("storage: snapshot length mismatch")
	}
	payload := data[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("storage: snapshot checksum mismatch")
	}
	return payload, nil
}

func frameSnapshot(payload []byte) []byte {
	out := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderSize:], payload)
	return out
}

// NumShards reports the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Durable reports whether the engine journals to disk.
func (e *Engine) Durable() bool { return e.opts.Dir != "" }

// Mutate runs one mutation on shard i: apply mutates the in-memory state
// under the shard's write lock and returns the record to journal (nil to
// skip journaling, e.g. when the mutation turned out to be a no-op). The
// record is enqueued on the shard's group-commit queue while the lock is
// still held — WAL order therefore equals apply order — and the call is
// acknowledged only after a commit batch containing the record is in the
// WAL under the engine's fsync policy (see commit.go). Concurrent writers
// to one shard coalesce into shared write+fsync batches instead of paying
// one flush each. A failed batch poisons the shard — the memory/log
// divergence cannot be repaired in place, so every later mutation fails
// fast.
func (e *Engine) Mutate(i int, apply func() ([]byte, error)) error {
	return e.mutate(i, apply, true)
}

// ApplyShipped journals one replicated record on shard i verbatim: the
// record bytes another node's engine produced are applied through the
// shard state's replay path and appended to this engine's WAL unchanged,
// which is what makes a caught-up follower's on-disk shards byte-identical
// to the primary's. Shipped records are not re-enqueued on the replication
// sink — replication is a single hop.
func (e *Engine) ApplyShipped(i int, rec []byte) error {
	return e.mutate(i, func() ([]byte, error) {
		if err := e.shards[i].state.Apply(rec); err != nil {
			return nil, err
		}
		return rec, nil
	}, false)
}

// AppendShipped journals one replicated record on shard i without replaying
// it into the in-memory state: what a follower owes the primary at ack time
// is durability, and deferring the replay drops most of the CPU a replica
// spends per record. Parked records are drained through the state's replay
// path before the next snapshot (compaction or close) and on Materialize —
// promotion calls the latter before serving reads over replicated users.
// The resulting WAL bytes and snapshots are identical to the eager
// ApplyShipped path: WAL order is append order either way, and shipped
// records only touch users the sending primary owns — disjoint from this
// node's locally-written keys — so the deferred replay commutes with local
// mutations. In memory-only mode there is no WAL to defer behind, so the
// record is applied eagerly.
func (e *Engine) AppendShipped(i int, rec []byte) error {
	s := e.shards[i]
	s.mu.Lock()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.w == nil {
		err := s.state.Apply(rec)
		s.mu.Unlock()
		return err
	}
	req, leader, err := s.c.enqueue(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.pending = append(s.pending, rec)
	s.since++
	compact := e.opts.CompactEvery > 0 && s.since >= e.opts.CompactEvery
	s.mu.Unlock()

	if err := s.c.commitWait(req, leader); err != nil {
		return err
	}
	if compact {
		e.compactIfDue(i)
	}
	return nil
}

// AppendShippedBatch journals a run of replicated records on shard i with
// one group-commit wait for the whole run: every record is enqueued on the
// committer under a single shard-lock hold (so WAL order is the run's
// order), and only then does the caller park on the commit signals — the
// first enqueue's leader drains the entire run into as few fsync batches
// as CommitMaxBatch allows, instead of each record paying its own commit
// cycle (and, with a non-zero CommitLinger, its own full linger). The
// durability contract is AppendShipped's: when the call returns nil, every
// record in the run is in the WAL under the engine's fsync policy.
func (e *Engine) AppendShippedBatch(i int, recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	s := e.shards[i]
	s.mu.Lock()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.w == nil {
		for _, rec := range recs {
			if err := s.state.Apply(rec); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
		return nil
	}
	reqs := make([]*commitReq, 0, len(recs))
	leaders := make([]bool, 0, len(recs))
	var enqErr error
	for _, rec := range recs {
		req, leader, err := s.c.enqueue(rec)
		if err != nil {
			// Poisoned mid-run: stop enqueueing, but still wait on what was
			// enqueued — a leader among them must run its batch (which will
			// fail fast) or the queue would stall forever.
			enqErr = err
			break
		}
		reqs = append(reqs, req)
		leaders = append(leaders, leader)
		s.pending = append(s.pending, rec)
		s.since++
	}
	compact := e.opts.CompactEvery > 0 && s.since >= e.opts.CompactEvery
	s.mu.Unlock()

	var firstErr error
	for j, req := range reqs {
		if err := s.c.commitWait(req, leaders[j]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if enqErr != nil {
		return enqErr
	}
	if firstErr != nil {
		return firstErr
	}
	if compact {
		e.compactIfDue(i)
	}
	return nil
}

// Materialize replays shard i's parked replica records (see AppendShipped)
// into the in-memory state.
func (e *Engine) Materialize(i int) error {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materializeLocked()
}

// MaterializeAll replays every shard's parked replica records concurrently
// (bounded pool — promotion wants the whole store readable in the time the
// largest shard takes); the first error is returned but all shards are
// attempted.
func (e *Engine) MaterializeAll() error {
	return e.forEachShard(e.Materialize)
}

// materializeLocked drains the pending replica records in append order. On
// error the already-applied prefix is dropped and the failing record kept,
// so a retry does not double-apply.
func (s *shard) materializeLocked() error {
	for len(s.pending) > 0 {
		if err := s.state.Apply(s.pending[0]); err != nil {
			return fmt.Errorf("storage: materialize shipped record: %w", err)
		}
		s.pending = s.pending[1:]
	}
	s.pending = nil
	return nil
}

// ApplyRecord journals one pre-encoded record on shard i through the full
// primary mutation path: applied via the shard state's replay path, written
// to the WAL, and enqueued on the replication sink like any local write.
// Cluster handoff imports use it — a handed-off user's records must ship
// onward to the importing node's own follower, unlike ApplyShipped records.
func (e *Engine) ApplyRecord(i int, rec []byte) error {
	return e.mutate(i, func() ([]byte, error) {
		if err := e.shards[i].state.Apply(rec); err != nil {
			return nil, err
		}
		return rec, nil
	}, true)
}

func (e *Engine) mutate(i int, apply func() ([]byte, error), ship bool) error {
	s := e.shards[i]
	s.mu.Lock()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	rec, err := apply()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if rec == nil {
		s.mu.Unlock()
		return nil
	}
	var rtok uint64
	if ship && e.opts.Repl != nil {
		// Under the lock: per-shard ship order is frozen to WAL order here.
		rtok = e.opts.Repl.Enqueue(i, rec)
	}
	if s.w == nil {
		s.mu.Unlock()
		if rtok != 0 {
			e.opts.Repl.Wait(rtok)
		}
		return nil
	}
	req, leader, err := s.c.enqueue(rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.since++
	compact := e.opts.CompactEvery > 0 && s.since >= e.opts.CompactEvery
	s.mu.Unlock()

	if err := s.c.commitWait(req, leader); err != nil {
		return err
	}
	if rtok != 0 {
		// Semi-synchronous replication: acknowledge the caller only after
		// the record is durable locally AND the follower has acked it (or
		// the sink degraded because the follower is unreachable).
		e.opts.Repl.Wait(rtok)
	}
	if compact {
		// Best-effort: the record is already durable in the WAL; a failed
		// compaction just means a longer replay on the next boot.
		e.compactIfDue(i)
	}
	return nil
}

// compactIfDue compacts shard i if it is still over the auto-compaction
// threshold. Several writers can cross the threshold while one batch is in
// flight; re-checking under the lock makes exactly one of them do the work,
// and an in-flight off-lock persist makes this a no-op (the rotation that
// started it already reset the counter, but a racer may have sampled the
// old value).
func (e *Engine) compactIfDue(i int) {
	s := e.shards[i]
	s.mu.Lock()
	if s.compacting || s.w == nil || s.sticky() != nil || s.since < e.opts.CompactEvery {
		s.mu.Unlock()
		return
	}
	if err := e.compactShard(s); err != nil { // releases s.mu
		// Resetting the counter spaces retries instead of attempting on
		// every append. (After a post-rotation persist failure the counter
		// is already reset; this covers failures before the rotation.)
		s.mu.Lock()
		s.since = 0
		s.mu.Unlock()
	}
}

// View runs read under shard i's read lock. The callback must not retain
// references to state internals beyond the call.
func (e *Engine) View(i int, read func()) {
	s := e.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	read()
}

// compactShard rotates the shard to a new generation using the two-phase
// protocol of DESIGN.md §16. The caller holds s.mu (not compacting, not
// poisoned, w non-nil); the lock is RELEASED by the time compactShard
// returns, success or not.
//
// Phase 1, under the lock (the only part writers ever wait on): drain the
// commit queue, materialize parked replica records, capture a snapshot
// encoder, and switch appends to a fresh wal-(N+1). The commit queue is
// drained first because every queued record was applied to the state before
// enqueue (so the snapshot captures it) but its waiter is parked on an fsync
// of the old log, which must complete before that log can be retired; new
// enqueues are blocked by the write lock.
//
// Phase 2, off the lock, while writers proceed on wal-(N+1): close the old
// log (flushing any unsynced tail — the retained generation must be complete
// before it becomes part of the recovery chain's past), stream the snapshot
// to snapshot-(N+1) via temp + fsync + rename, and only then delete
// generations [base, N]. A crash at any point leaves either a complete
// snapshot-(N+1) (recovery restores it and replays wal-(N+1)) or a missing /
// truncated one (recovery falls back to snapshot-<base> and replays the
// chain wal-<base> .. wal-(N+1)); openShard's sweep finishes the cleanup.
//
// For states implementing SnapshotViewer the encoder works over a captured
// immutable view and the lock-held pause is O(1) in shard size; legacy
// states encode under the lock as before (the pause metric then includes the
// encode).
func (e *Engine) compactShard(s *shard) error {
	pauseStart := time.Now()
	if err := s.c.drain(); err != nil {
		// Poisoned: the in-memory state includes mutations the log rejected;
		// snapshotting would persist the divergence as truth.
		s.mu.Unlock()
		return err
	}
	if err := s.materializeLocked(); err != nil {
		// Snapshotting now would drop the parked records when the old WAL
		// (the only durable copy) is retired.
		s.mu.Unlock()
		return err
	}
	var encode func(io.Writer) error
	release := func() {}
	if v, ok := s.state.(SnapshotViewer); ok {
		enc, rel, err := v.SnapshotView()
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("storage: capture snapshot view: %w", err)
		}
		encode, release = enc, rel
	} else {
		payload, err := s.state.Snapshot()
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("storage: encode snapshot: %w", err)
		}
		encode = func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		}
	}
	next := s.seq + 1
	w, err := createWAL(filepath.Join(s.dir, walName(next)), s.w.policy, s.w.every, s.m)
	if err != nil {
		release()
		s.mu.Unlock()
		return err
	}
	if err := syncDir(w.path); err != nil {
		w.Close()
		os.Remove(filepath.Join(s.dir, walName(next)))
		release()
		s.mu.Unlock()
		return err
	}
	old := s.w
	base := s.base
	s.w, s.seq, s.since = w, next, 0
	s.c.setWAL(w)
	s.compacting = true
	s.m.compactPauseDur.ObserveDuration(time.Since(pauseStart))
	s.mu.Unlock()

	// Phase 2: persist off the lock.
	encStart := time.Now()
	err = old.Close()
	var payloadBytes int64
	if err == nil {
		payloadBytes, err = writeSnapshotFile(filepath.Join(s.dir, snapName(next)), encode)
	}
	release()
	if err == nil {
		for g := base; g < next; g++ {
			os.Remove(filepath.Join(s.dir, walName(g)))
			os.Remove(filepath.Join(s.dir, snapName(g)))
		}
	}

	s.mu.Lock()
	s.compacting = false
	if err == nil {
		s.base = next
		s.m.compactions.Inc()
		s.m.compactionDur.ObserveDuration(time.Since(pauseStart))
		s.m.compactEncodeDur.ObserveDuration(time.Since(encStart))
		s.m.snapshotBytes.Observe(payloadBytes)
	}
	// On failure generations [base, next-1] stay on disk and base is
	// unchanged: recovery replays the whole chain, and the next compaction
	// retries the persist from the new tip.
	s.compactCond.Broadcast()
	s.mu.Unlock()
	return err
}

// Compact snapshots shard i and truncates its log chain. It waits for any
// in-flight off-lock persist first, so when Compact returns nil the shard is
// at a single fresh generation.
func (e *Engine) Compact(i int) error {
	s := e.shards[i]
	s.mu.Lock()
	s.waitCompactLocked()
	if err := s.sticky(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.w == nil {
		s.mu.Unlock()
		return nil
	}
	return e.compactShard(s) // releases s.mu
}

// CompactAll snapshots every shard concurrently (bounded pool); the first
// error is returned but all shards are attempted.
func (e *Engine) CompactAll() error {
	return e.forEachShard(e.Compact)
}

// Sync drains every shard's commit queue and forces its WAL to stable
// storage (a checkpoint for SyncInterval / SyncNever policies).
func (e *Engine) Sync() error {
	var firstErr error
	for _, s := range e.shards {
		s.mu.Lock()
		if s.w != nil {
			if err := s.c.drain(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else if err := s.w.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
	}
	return firstErr
}

// Close compacts (so the next boot replays nothing), syncs, and closes every
// shard, fanning out across the same bounded pool as Open so shutdown costs
// the largest shard. The engine must not be used afterwards.
func (e *Engine) Close() error {
	return e.forEachShard(e.closeShard)
}

func (e *Engine) closeShard(i int) error {
	s := e.shards[i]
	s.mu.Lock()
	s.waitCompactLocked()
	if s.w == nil {
		s.mu.Unlock()
		return nil
	}
	var firstErr error
	if s.sticky() == nil && (s.since > 0 || s.base != s.seq) {
		if err := e.compactShard(s); err != nil { // releases s.mu
			firstErr = err
		}
		s.mu.Lock()
		s.waitCompactLocked()
	}
	if s.w != nil {
		// Flush whatever the queue holds before the log closes — a writer
		// may have slipped in while the final compaction persisted.
		s.c.drain()
		s.c.setWAL(nil) // late mutations are acknowledged but unjournaled, as before
		if err := s.w.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("storage: close shard %d: %w", i, err)
		}
		s.w = nil
	}
	s.mu.Unlock()
	return firstErr
}
