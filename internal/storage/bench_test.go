package storage

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// The benchmarks behind BENCH_storage.json. The shard-scaling pair is the
// acceptance measurement for the sharded engine: identical record volume,
// identical fsync policy, only the shard count (and hence lock contention)
// differs. Run with:
//
//	go test ./internal/storage -run '^$' -bench . -benchmem
func benchEngine(b *testing.B, shards int, opts Options) (*Engine, []*kvState) {
	b.Helper()
	if opts.Dir == "disk" {
		opts.Dir = b.TempDir()
	}
	states := make([]ShardState, shards)
	kvs := make([]*kvState, shards)
	for i := range states {
		kvs[i] = newKV()
		states[i] = kvs[i]
	}
	e, err := Open(opts, states)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e, kvs
}

// benchParallelMutate drives b.N journaled writes from 8 worker goroutines,
// each pinned to the shard its worker ID hashes to — the concurrent-upload
// pattern of many users hitting the PCI at once. SetParallelism pins the
// worker count so the 1-vs-8-shard comparison is 8 writers contending on one
// lock vs 8 writers each owning their own, independent of GOMAXPROCS; keys
// cycle through a fixed window so map size doesn't confound the comparison.
func benchParallelMutate(b *testing.B, e *Engine, kvs []*kvState) {
	var worker atomic.Int64
	rec := kvRecord("user-profile", "payload-of-a-typical-journal-record")
	b.SetParallelism(max(1, 8/runtime.GOMAXPROCS(0)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		shard := id % e.NumShards()
		st := kvs[shard]
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("w%d-k%d", id, i%1024)
			i++
			if err := e.Mutate(shard, func() ([]byte, error) {
				st.m[key] = "v"
				return rec, nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMutateParallelShards1(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{Dir: "disk", Sync: SyncNever, CompactEvery: -1})
	benchParallelMutate(b, e, kvs)
}

func BenchmarkMutateParallelShards8(b *testing.B) {
	e, kvs := benchEngine(b, 8, Options{Dir: "disk", Sync: SyncNever, CompactEvery: -1})
	benchParallelMutate(b, e, kvs)
}

// The fsync=always pair is where sharding pays off even on few cores: one
// shard serializes every commit behind a single log's fsync, while N shards
// fsync N independent files that overlap in the kernel and on the device.
func BenchmarkMutateParallelDurableShards1(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{Dir: "disk", Sync: SyncAlways, CompactEvery: -1})
	benchParallelMutate(b, e, kvs)
}

func BenchmarkMutateParallelDurableShards8(b *testing.B) {
	e, kvs := benchEngine(b, 8, Options{Dir: "disk", Sync: SyncAlways, CompactEvery: -1})
	benchParallelMutate(b, e, kvs)
}

// The group-commit pair is the acceptance measurement for ISSUE 3: 8 durable
// writers contending on ONE shard, with commit grouping disabled
// (CommitMaxBatch: -1 — every record pays its own write+fsync, the
// pre-group-commit behavior) versus enabled. The ns/op ratio is the commit
// throughput multiplier delivered by batching concurrent fsyncs.
func BenchmarkGroupCommitOff(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{
		Dir: "disk", Sync: SyncAlways, CompactEvery: -1, CommitMaxBatch: -1,
	})
	benchParallelMutate(b, e, kvs)
}

func BenchmarkGroupCommitOn(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{
		Dir: "disk", Sync: SyncAlways, CompactEvery: -1,
	})
	benchParallelMutate(b, e, kvs)
}

func BenchmarkMutateFsyncNever(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{Dir: "disk", Sync: SyncNever, CompactEvery: -1})
	benchSerialMutate(b, e, kvs[0])
}

func BenchmarkMutateFsyncInterval(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{Dir: "disk", Sync: SyncInterval, CompactEvery: -1})
	benchSerialMutate(b, e, kvs[0])
}

func BenchmarkMutateFsyncAlways(b *testing.B) {
	e, kvs := benchEngine(b, 1, Options{Dir: "disk", Sync: SyncAlways, CompactEvery: -1})
	benchSerialMutate(b, e, kvs[0])
}

func benchSerialMutate(b *testing.B, e *Engine, st *kvState) {
	rec := kvRecord("user-profile", "payload-of-a-typical-journal-record")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := e.Mutate(0, func() ([]byte, error) {
			st.m[key] = "v"
			return rec, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedReadWrite models the analytics-heavy PCI workload: 80% reads
// against 20% journaled writes on the same shard set.
func BenchmarkMixedReadWrite(b *testing.B) {
	e, kvs := benchEngine(b, 8, Options{Dir: "disk", Sync: SyncNever, CompactEvery: -1})
	rec := kvRecord("k", "v")
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		shard := id % e.NumShards()
		st := kvs[shard]
		i := 0
		for pb.Next() {
			if i%5 == 0 {
				key := fmt.Sprintf("w%d-k%d", id, i)
				if err := e.Mutate(shard, func() ([]byte, error) {
					st.m[key] = "v"
					return rec, nil
				}); err != nil {
					b.Fatal(err)
				}
			} else {
				var n int
				e.View(shard, func() { n = len(st.m) })
				_ = n
			}
			i++
		}
	})
}

func BenchmarkWALAppend(b *testing.B) {
	w, err := createWAL(b.TempDir()+"/bench.log", SyncNever, DefaultSyncEvery, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := make([]byte, 256)
	b.SetBytes(int64(frameHeaderSize + len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	e, kvs := benchEngine(b, 1, Options{Dir: dir, Sync: SyncNever, CompactEvery: -1})
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := e.Mutate(0, func() ([]byte, error) {
			kvs[0].m[key] = "v"
			return kvRecord(key, "v"), nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newKV()
		e2, err := Open(Options{Dir: dir, Sync: SyncNever, CompactEvery: -1}, []ShardState{st})
		if err != nil {
			b.Fatal(err)
		}
		if len(st.m) != 10000 {
			b.Fatalf("recovered %d keys", len(st.m))
		}
		// Suppress the close-time snapshot: each iteration must replay the
		// same 10k-record WAL, not load a snapshot the previous one wrote.
		e2.shards[0].since = 0
		e2.Close()
	}
}
