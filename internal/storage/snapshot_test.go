package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

// viewerKV is kvState plus the off-lock snapshot extensions: the reference
// state for the two-phase compaction paths. SnapshotView captures the
// encoding eagerly (cheap at test scale), so the returned encoder is a pure
// function of the state at capture time — exactly the contract the engine
// relies on.
type viewerKV struct {
	kvState
}

func newViewerKV() *viewerKV { return &viewerKV{kvState{m: map[string]string{}}} }

func (s *viewerKV) SnapshotView() (func(io.Writer) error, func(), error) {
	payload, err := json.Marshal(s.m)
	if err != nil {
		return nil, nil, err
	}
	encode := func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}
	return encode, func() {}, nil
}

func (s *viewerKV) RestoreStream(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return s.Restore(b)
}

// gatedKV additionally blocks its encoder until the test releases it, which
// freezes a compaction in its off-lock persist phase.
type gatedKV struct {
	viewerKV
	entered  chan struct{} // closed when the encoder first runs
	release  chan struct{} // encoder blocks until this closes
	enterOne sync.Once     // Close may compact (and encode) again later
}

func newGatedKV() *gatedKV {
	return &gatedKV{
		viewerKV: viewerKV{kvState{m: map[string]string{}}},
		entered:  make(chan struct{}),
		release:  make(chan struct{}),
	}
}

func (s *gatedKV) SnapshotView() (func(io.Writer) error, func(), error) {
	payload, err := json.Marshal(s.m)
	if err != nil {
		return nil, nil, err
	}
	encode := func(w io.Writer) error {
		s.enterOne.Do(func() { close(s.entered) })
		<-s.release
		_, err := w.Write(payload)
		return err
	}
	return encode, func() {}, nil
}

func TestChunkedSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, snapName(1))
	// Multi-chunk payload: bigger than snapChunkSize, not chunk-aligned.
	big := bytes.Repeat([]byte("pmware"), (snapChunkSize/6)+1234)
	payload, err := json.Marshal(map[string]string{"big": string(big), "small": "x"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := writeSnapshotFile(path, func(w io.Writer) error {
		// Dribble the payload through odd-sized writes to exercise chunk
		// boundary handling.
		for off := 0; off < len(payload); off += 7777 {
			end := min(off+7777, len(payload))
			if _, err := w.Write(payload[off:end]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("payload bytes = %d, want %d", n, len(payload))
	}

	// Restore through the streaming path and the legacy []byte path.
	for _, state := range []ShardState{newViewerKV(), newKV()} {
		if err := restoreSnapshotFile(path, state); err != nil {
			t.Fatalf("%T restore: %v", state, err)
		}
	}
	st := newViewerKV()
	if err := restoreSnapshotFile(path, st); err != nil {
		t.Fatal(err)
	}
	if st.m["small"] != "x" || st.m["big"] != string(big) {
		t.Fatal("restored state does not match encoded payload")
	}
}

func TestChunkedSnapshotRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, snapName(1))
	payload, _ := json.Marshal(map[string]string{"k": "v"})
	if _, err := writeSnapshotFile(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every strict byte-level prefix must be rejected (missing end marker or
	// torn frame), never half-restored.
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := restoreSnapshotFile(path, newViewerKV()); err == nil {
			t.Fatalf("truncation at %d/%d bytes restored without error", cut, len(full))
		}
	}

	// A flipped payload byte must be rejected too.
	corrupt := append([]byte(nil), full...)
	corrupt[len(snapMagic)+frameHeaderSize] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := restoreSnapshotFile(path, newViewerKV()); err == nil {
		t.Fatal("corrupt chunk restored without error")
	}

	// Trailing garbage after the end marker is not what the writer produced.
	if err := os.WriteFile(path, append(append([]byte(nil), full...), 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := restoreSnapshotFile(path, newViewerKV()); err == nil {
		t.Fatal("trailing garbage restored without error")
	}
}

func TestSnapshotLegacyV1Read(t *testing.T) {
	// Data directories written before the chunked layout hold single-frame
	// snapshots; restoreSnapshotFile must keep reading them.
	dir := t.TempDir()
	path := filepath.Join(dir, snapName(3))
	payload, _ := json.Marshal(map[string]string{"old": "gen"})
	if err := os.WriteFile(path, frameSnapshot(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, state := range []ShardState{newKV(), newViewerKV()} {
		if err := restoreSnapshotFile(path, state); err != nil {
			t.Fatalf("%T: %v", state, err)
		}
	}
	st := newViewerKV()
	if err := restoreSnapshotFile(path, st); err != nil {
		t.Fatal(err)
	}
	if st.m["old"] != "gen" {
		t.Fatal("legacy snapshot payload lost")
	}
}

// copyDir snapshots a shard directory's files (no subdirs) into a fresh dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func openShardDirKV(t *testing.T, dir string) map[string]string {
	t.Helper()
	st := newViewerKV()
	sh, err := openShard(dir, st, Options{Sync: SyncNever, SyncEvery: DefaultSyncEvery}, newEngineMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	sh.w.Close()
	return st.m
}

// TestOffLockCompactionCrashProperty is the tentpole's recovery property:
// freeze a compaction in its off-lock persist phase, keep writing (proving
// writers are not stalled), and then check that a crash at ANY byte offset
// of the in-flight snapshot file recovers the full acknowledged state —
// generation N's snapshot/WAL plus every wal-(N+1) record appended while the
// snapshot was being written.
func TestOffLockCompactionCrashProperty(t *testing.T) {
	dir := t.TempDir()
	st := newGatedKV()
	e, err := Open(Options{Dir: dir, Sync: SyncAlways, CompactEvery: -1}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	put := func(k, v string) {
		t.Helper()
		if err := e.Mutate(0, func() ([]byte, error) {
			st.m[k] = v
			return kvRecord(k, v), nil
		}); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 30; i++ {
		put(fmt.Sprintf("pre%02d", i), "a")
	}

	compactErr := make(chan error, 1)
	go func() { compactErr <- e.Compact(0) }()
	<-st.entered // persist phase running, encoder frozen, lock released

	// Writers proceed on wal-1 while the snapshot is in flight. If the lock
	// were held through the encode these Mutates would deadlock against the
	// gated encoder and the test would time out — this is the stall-free
	// assertion in its sharpest form.
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("mid%02d", i), "b")
	}

	shardDir := filepath.Join(dir, "shard-000")
	mid := copyDir(t, shardDir) // crash before snapshot-1 landed
	close(st.release)
	if err := <-compactErr; err != nil {
		t.Fatal(err)
	}
	post := copyDir(t, shardDir) // snapshot-1 durable, generation 0 retired

	// Crash while snapshot-1.tmp was mid-write: wal-0 + wal-1 chain replay.
	if got := openShardDirKV(t, mid); !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-compaction crash recovery: got %d keys, want %d", len(got), len(want))
	}

	// Crash with snapshot-1 cut at every byte offset: an intact prefix of the
	// chunked file must never pass validation, so recovery falls back to the
	// wal-0 + wal-1 chain; the complete file restores and replays wal-1.
	snapData, err := os.ReadFile(filepath.Join(post, snapName(1)))
	if err != nil {
		t.Fatal(err)
	}
	walData, err := os.ReadFile(filepath.Join(mid, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(snapData); cut++ {
		caseDir := copyDir(t, post)
		// Re-add the retained generation-0 log the completed compaction
		// deleted: mid-persist both generations are on disk.
		if err := os.WriteFile(filepath.Join(caseDir, walName(0)), walData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(caseDir, snapName(1)), snapData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if got := openShardDirKV(t, caseDir); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d/%d: recovered %d keys, want %d", cut, len(snapData), len(got), len(want))
		}
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// And the clean post-compaction layout recovers too.
	re := newViewerKV()
	e2, err := Open(Options{Dir: dir, Sync: SyncAlways}, []ShardState{re})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !reflect.DeepEqual(re.m, want) {
		t.Fatal("clean reopen lost state")
	}
}

// TestWritersRacingCompaction runs concurrent writers against continuous
// explicit compactions (meaningful under -race: the off-lock encoder reads
// its captured view while writers mutate the live map) and pins recovery to
// the byte-identical serialized expectation.
func TestWritersRacingCompaction(t *testing.T) {
	dir := t.TempDir()
	st := newViewerKV()
	e, err := Open(Options{Dir: dir, Sync: SyncNever, CompactEvery: -1}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%04d", wkr, i)
				if err := e.Mutate(0, func() ([]byte, error) {
					st.m[k] = "v"
					return kvRecord(k, "v"), nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(wkr)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if err := e.Compact(0); err != nil {
			t.Error(err)
			break
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Serialized control: every (writer, i) key exactly once.
	want := map[string]string{}
	for wkr := 0; wkr < writers; wkr++ {
		for i := 0; i < perWriter; i++ {
			want[fmt.Sprintf("w%d-%04d", wkr, i)] = "v"
		}
	}
	re := newViewerKV()
	e2, err := Open(Options{Dir: dir, Sync: SyncNever}, []ShardState{re})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	gotJSON, _ := json.Marshal(re.m)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("recovered state diverged: %d keys, want %d", len(re.m), len(want))
	}
}

// TestParallelOpenEquivalence pins the worker-pool recovery to the serial
// baseline: same directory, same recovered state, for both a viewer and a
// legacy state, at several worker counts.
func TestParallelOpenEquivalence(t *testing.T) {
	dir := t.TempDir()
	const shards = 5
	e, kvs := openKV(t, dir, shards, Options{Sync: SyncNever, CompactEvery: 10})
	want := make([]map[string]string, shards)
	for i := 0; i < shards; i++ {
		want[i] = map[string]string{}
		for j := 0; j < 25; j++ {
			k := fmt.Sprintf("s%d-%d", i, j)
			kvSet(t, e, i, kvs[i], k, "v")
			want[i][k] = "v"
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Leave replay work behind each snapshot: append records straight to the
	// current log of every shard, as an unclean shutdown would.
	for i := 0; i < shards; i++ {
		shardDir := filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
		ents, err := os.ReadDir(shardDir)
		if err != nil {
			t.Fatal(err)
		}
		var cur uint64
		for _, ent := range ents {
			if seq, err := parseSeq(ent.Name(), "wal-", ".log"); err == nil && seq > cur {
				cur = seq
			}
		}
		w, err := createWAL(filepath.Join(shardDir, walName(cur)), SyncNever, DefaultSyncEvery, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			k := fmt.Sprintf("tail%d-%d", i, j)
			if err := w.Append(kvRecord(k, "t")); err != nil {
				t.Fatal(err)
			}
			want[i][k] = "t"
		}
		w.Close()
	}

	for _, workers := range []int{1, 2, 8} {
		re, rekvs := openKV(t, dir, shards, Options{Sync: SyncNever, RecoverWorkers: workers})
		for i := 0; i < shards; i++ {
			if !reflect.DeepEqual(rekvs[i].m, want[i]) {
				t.Fatalf("workers=%d shard %d: got %d keys, want %d", workers, i, len(rekvs[i].m), len(want[i]))
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelOpenFirstErrorWins: when several shards fail to recover, Open
// reports the lowest-index failure deterministically and releases whatever
// did open.
func TestParallelOpenFirstErrorWins(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	e, kvs := openKV(t, dir, shards, Options{Sync: SyncNever, CompactEvery: -1})
	for i := 0; i < shards; i++ {
		kvSet(t, e, i, kvs[i], "k", "v")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Poison shards 1 and 3 with a record the state rejects (no separator):
	// an intact frame whose apply fails is a real recovery error. Close
	// compacted each shard to generation 1, so wal-1 is what replay reads.
	for _, i := range []int{1, 3} {
		w, err := createWAL(filepath.Join(dir, fmt.Sprintf("shard-%03d", i), walName(1)), SyncNever, DefaultSyncEvery, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append([]byte("malformed")); err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	for _, workers := range []int{1, 4} {
		_, err := Open(Options{Dir: dir, Sync: SyncNever, RecoverWorkers: workers}, func() []ShardState {
			states := make([]ShardState, shards)
			for i := range states {
				states[i] = newKV()
			}
			return states
		}())
		if err == nil {
			t.Fatalf("workers=%d: Open succeeded over a poisoned WAL", workers)
		}
		if want := "shard 1:"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("workers=%d: first error = %q, want lowest failing shard (%q)", workers, err, want)
		}
	}
}

// TestOffLockMetricsDeltas pins the new pci_storage_* families: one pause +
// one encode + one size observation per completed compaction, one boot
// observation per shard recovered.
func TestOffLockMetricsDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	st := newViewerKV()
	e, err := Open(Options{Dir: dir, Sync: SyncNever, CompactEvery: -1, Metrics: reg}, []ShardState{st})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Histograms["pci_storage_boot_recover_us"].Count; got != 1 {
		t.Errorf("boot recover observations = %d, want 1", got)
	}
	const compactions = 3
	for i := 0; i < compactions; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := e.Mutate(0, func() ([]byte, error) {
			st.m[k] = "v"
			return kvRecord(k, "v"), nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Compact(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	s = reg.Snapshot()
	for _, name := range []string{"pci_storage_compact_pause_us", "pci_storage_compact_encode_us", "pci_storage_snapshot_bytes"} {
		if got := s.Histograms[name].Count; got != compactions {
			t.Errorf("%s observations = %d, want %d", name, got, compactions)
		}
	}
	if got := s.Counter("storage_compactions_total"); got != compactions {
		t.Errorf("compactions = %d, want %d", got, compactions)
	}
}
