// Package storage implements the PMWare Cloud Instance's durable, sharded
// storage engine (DESIGN.md §8). The paper's PCI "stores long term mobility
// patterns" as the system of record; this package provides the substrate
// that makes those patterns survive a crash:
//
//   - an append-only write-ahead log per shard, with CRC32-framed,
//     length-prefixed records and a configurable fsync policy;
//   - periodic snapshot + log compaction (snapshot written via temp file +
//     rename; the old generation is deleted only after the new snapshot is
//     durable);
//   - corruption-tolerant recovery that truncates a torn WAL tail instead
//     of refusing to start.
//
// The engine is generic: shard state is anything implementing ShardState
// (apply a journaled record, encode/decode a snapshot). The typed layer in
// internal/cloud journals its mutations as records and replays them here.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// SyncPolicy controls when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged write is
	// durable. This is the default and the policy the crash-recovery
	// guarantees assume.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncEvery (checked on append).
	// A crash can lose up to one interval of acknowledged writes but never
	// corrupts the log.
	SyncInterval
	// SyncNever leaves flushing to the OS — for simulations and benchmarks
	// where the process, not the machine, is the failure domain.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the CLI spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval, or never)", s)
}

// Record frame: | u32 payload length | u32 CRC32-IEEE(payload) | payload |,
// little-endian. The CRC covers only the payload; a torn header, torn
// payload, or mismatched CRC all read as "the log ends here".
const frameHeaderSize = 8

// MaxRecordSize bounds a single WAL record. Recovery treats a larger length
// prefix as a torn/corrupt tail (a garbage length would otherwise make it
// try to allocate gigabytes).
const MaxRecordSize = 64 << 20

// wal is a single append-only log file. Not safe for concurrent use; in the
// engine exactly one goroutine touches it at a time — the current group-commit
// leader, or a rotation/close path that drained the commit queue first.
type wal struct {
	f        *os.File
	path     string
	policy   SyncPolicy
	every    time.Duration
	lastSync time.Time
	size     int64
	m        *engineMetrics
	frame    []byte    // reused append buffer
	single   [1][]byte // reused one-record batch for Append
}

// createWAL opens (creating if needed) the log at path for appending.
func createWAL(path string, policy SyncPolicy, every time.Duration, m *engineMetrics) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat wal: %w", err)
	}
	if m == nil {
		m = newEngineMetrics(nil)
	}
	return &wal{f: f, path: path, policy: policy, every: every, size: st.Size(), m: m}, nil
}

// Append journals one record and applies the fsync policy.
func (w *wal) Append(rec []byte) error {
	w.single[0] = rec
	return w.AppendBatch(w.single[:])
}

// AppendBatch journals a group of records as one frame sequence, issued with
// a single Write call and (under SyncAlways) a single fsync — the group
// commit primitive: N coalesced commits cost one write and one sync instead
// of N of each. A crash tears at most the tail of the batch, so replay
// recovers a strict prefix of it in order, never an interleaving.
func (w *wal) AppendBatch(recs [][]byte) error {
	need := 0
	for _, rec := range recs {
		if len(rec) > MaxRecordSize {
			return fmt.Errorf("storage: record of %d bytes exceeds MaxRecordSize", len(rec))
		}
		need += frameHeaderSize + len(rec)
	}
	if need == 0 {
		return nil
	}
	if cap(w.frame) < need {
		w.frame = make([]byte, need)
	}
	frame := w.frame[:need]
	off := 0
	for _, rec := range recs {
		binary.LittleEndian.PutUint32(frame[off:off+4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(frame[off+4:off+8], crc32.ChecksumIEEE(rec))
		copy(frame[off+frameHeaderSize:], rec)
		off += frameHeaderSize + len(rec)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	w.size += int64(need)
	w.m.walAppendRecords.Add(uint64(len(recs)))
	w.m.walAppendBytes.Add(uint64(need))
	switch w.policy {
	case SyncAlways:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.every {
			return w.Sync()
		}
	}
	return nil
}

// Sync flushes the log to stable storage.
func (w *wal) Sync() error {
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	w.lastSync = time.Now()
	w.m.fsyncs.Inc()
	w.m.fsyncDur.ObserveDuration(w.lastSync.Sub(start))
	return nil
}

// Close syncs (unless SyncNever) and closes the file.
func (w *wal) Close() error {
	var firstErr error
	if w.policy != SyncNever {
		firstErr = w.Sync()
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// replayWAL reads every intact record in the log at path, feeding each
// payload to apply, and truncates the file at the first torn or corrupt
// frame (partial header, impossible length, short payload, CRC mismatch).
// Recovery is therefore total: any byte-level prefix of a valid log recovers
// to exactly the records fully contained in it. An apply error is a real
// failure (the record was intact but the state rejected it) and aborts.
// truncated reports whether a torn tail was cut off.
func replayWAL(path string, apply func([]byte) error) (records int, truncated bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()

	var good int64 // offset after the last intact record
	hdr := make([]byte, frameHeaderSize)
	var payload []byte
	torn := false
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			torn = err != io.EOF // partial header counts as torn
			break
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if ln > MaxRecordSize {
			torn = true
			break
		}
		if cap(payload) < int(ln) {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, err := io.ReadFull(f, payload); err != nil {
			torn = true
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			torn = true
			break
		}
		if err := apply(payload); err != nil {
			return records, false, fmt.Errorf("storage: replay record %d: %w", records, err)
		}
		good += int64(frameHeaderSize) + int64(ln)
		records++
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			return records, true, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return records, true, fmt.Errorf("storage: sync truncated wal: %w", err)
		}
	}
	return records, torn, nil
}

// writeFileAtomic writes data to path via a temp file in the same directory
// plus rename, fsyncing both the file and the directory, so a crash at any
// point leaves either the old file or the new one — never a torn mix.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(path)
}

// syncDir fsyncs the directory containing path, making a rename or create
// within it durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
