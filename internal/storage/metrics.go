package storage

import "repro/internal/obs"

// engineMetrics is the storage engine's metric bundle (DESIGN.md §10). The
// handles are resolved once per engine and shared by its shards, WALs, and
// committers, so the hot path pays atomic increments, never registry lookups.
//
// Family inventory (all counters unless noted):
//
//	storage_wal_append_records_total   records journaled
//	storage_wal_append_bytes_total     framed bytes written to WALs
//	storage_wal_fsync_total            fsync syscalls issued
//	storage_wal_fsync_duration_us      histogram of fsync latency
//	storage_commit_batches_total       group commits flushed
//	storage_commit_records_total       records carried by group commits
//	storage_commit_batch_records       histogram of batch sizes (coalescing)
//	storage_compactions_total          snapshot+rotate cycles completed
//	storage_compaction_duration_us     histogram of full compaction latency
//	storage_replay_records_total       records replayed at recovery
//	storage_replay_torn_tails_total    torn WAL tails truncated at recovery
//	storage_shards_poisoned_total      shards poisoned by journal failure
//	pci_storage_compact_pause_us       histogram: write-lock hold per compaction
//	pci_storage_compact_encode_us      histogram: off-lock encode+fsync portion
//	pci_storage_boot_recover_us        histogram: per-shard recovery at Open
//	pci_storage_snapshot_bytes         histogram: snapshot payload sizes
//
// The pci_storage_compact_pause_us / _encode_us split is the observable form
// of the two-phase compaction protocol (DESIGN.md §16): pause is the only
// part writers ever wait on, encode runs while they proceed.
type engineMetrics struct {
	walAppendRecords *obs.Counter
	walAppendBytes   *obs.Counter
	fsyncs           *obs.Counter
	fsyncDur         *obs.Histogram
	commitBatches    *obs.Counter
	commitRecords    *obs.Counter
	commitBatchSize  *obs.Histogram
	compactions      *obs.Counter
	compactionDur    *obs.Histogram
	replayRecords    *obs.Counter
	replayTornTails  *obs.Counter
	shardsPoisoned   *obs.Counter
	compactPauseDur  *obs.Histogram
	compactEncodeDur *obs.Histogram
	bootRecoverDur   *obs.Histogram
	snapshotBytes    *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &engineMetrics{
		walAppendRecords: reg.Counter("storage_wal_append_records_total"),
		walAppendBytes:   reg.Counter("storage_wal_append_bytes_total"),
		fsyncs:           reg.Counter("storage_wal_fsync_total"),
		fsyncDur:         reg.Histogram("storage_wal_fsync_duration_us", obs.DefaultLatencyBuckets()),
		commitBatches:    reg.Counter("storage_commit_batches_total"),
		commitRecords:    reg.Counter("storage_commit_records_total"),
		commitBatchSize:  reg.Histogram("storage_commit_batch_records", obs.ExpBuckets(1, 2, 9)),
		compactions:      reg.Counter("storage_compactions_total"),
		compactionDur:    reg.Histogram("storage_compaction_duration_us", obs.DefaultLatencyBuckets()),
		replayRecords:    reg.Counter("storage_replay_records_total"),
		replayTornTails:  reg.Counter("storage_replay_torn_tails_total"),
		shardsPoisoned:   reg.Counter("storage_shards_poisoned_total"),
		// Pause is expected in single-digit microseconds for viewer states,
		// so its buckets start at 1µs where DefaultLatencyBuckets (50µs
		// floor) would flatten the distribution the ≥10x claim is about.
		compactPauseDur:  reg.Histogram("pci_storage_compact_pause_us", obs.ExpBuckets(1, 2, 20)),
		compactEncodeDur: reg.Histogram("pci_storage_compact_encode_us", obs.DefaultLatencyBuckets()),
		bootRecoverDur:   reg.Histogram("pci_storage_boot_recover_us", obs.ExpBuckets(100, 2, 20)),
		snapshotBytes:    reg.Histogram("pci_storage_snapshot_bytes", obs.ExpBuckets(1024, 2, 20)),
	}
}
