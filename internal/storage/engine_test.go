package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// kvState is the reference ShardState for engine tests: a string map whose
// records are "key\x00value" pairs and whose snapshot is JSON.
type kvState struct {
	m map[string]string
}

func newKV() *kvState { return &kvState{m: map[string]string{}} }

func kvRecord(k, v string) []byte { return []byte(k + "\x00" + v) }

func (s *kvState) Apply(rec []byte) error {
	k, v, ok := strings.Cut(string(rec), "\x00")
	if !ok {
		return fmt.Errorf("kv: malformed record %q", rec)
	}
	s.m[k] = v
	return nil
}

func (s *kvState) Snapshot() ([]byte, error) { return json.Marshal(s.m) }

func (s *kvState) Restore(snap []byte) error {
	fresh := map[string]string{}
	if err := json.Unmarshal(snap, &fresh); err != nil {
		return err
	}
	s.m = fresh
	return nil
}

// set journals one key through the engine.
func kvSet(t *testing.T, e *Engine, shard int, st *kvState, k, v string) {
	t.Helper()
	err := e.Mutate(shard, func() ([]byte, error) {
		st.m[k] = v
		return kvRecord(k, v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func openKV(t *testing.T, dir string, shards int, opts Options) (*Engine, []*kvState) {
	t.Helper()
	opts.Dir = dir
	states := make([]ShardState, shards)
	kvs := make([]*kvState, shards)
	for i := range states {
		kvs[i] = newKV()
		states[i] = kvs[i]
	}
	e, err := Open(opts, states)
	if err != nil {
		t.Fatal(err)
	}
	return e, kvs
}

func TestEngineMemoryOnly(t *testing.T) {
	e, kvs := openKV(t, "", 2, Options{})
	kvSet(t, e, 0, kvs[0], "a", "1")
	kvSet(t, e, 1, kvs[1], "b", "2")
	if !e.Durable() {
		// expected: memory-only
	} else {
		t.Fatal("empty dir should be memory-only")
	}
	var got string
	e.View(0, func() { got = kvs[0].m["a"] })
	if got != "1" {
		t.Errorf("view = %q", got)
	}
	if err := e.Compact(0); err != nil {
		t.Errorf("memory compact: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("memory close: %v", err)
	}
}

func TestEnginePersistAndRecover(t *testing.T) {
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 3, Options{Sync: SyncAlways})
	for i := 0; i < 30; i++ {
		shard := i % 3
		kvSet(t, e, shard, kvs[shard], fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	// No Close: simulate a hard kill (fsync=always means everything is on disk).

	e2, kvs2 := openKV(t, dir, 3, Options{Sync: SyncAlways})
	defer e2.Close()
	total := 0
	for i, kv := range kvs2 {
		e2.View(i, func() { total += len(kv.m) })
	}
	if total != 30 {
		t.Fatalf("recovered %d keys, want 30", total)
	}
	var v string
	e2.View(2, func() { v = kvs2[2].m["k29"] })
	if v != "v29" {
		t.Errorf("k29 = %q", v)
	}
}

func TestEngineCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	// CompactEvery=5: 23 writes force several rotations.
	e, kvs := openKV(t, dir, 1, Options{Sync: SyncAlways, CompactEvery: 5})
	for i := 0; i < 23; i++ {
		kvSet(t, e, 0, kvs[0], fmt.Sprintf("k%02d", i), "v")
	}
	// Exactly one generation should remain in the shard dir.
	shardDir := filepath.Join(dir, "shard-000")
	ents, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	for _, ent := range ents {
		switch {
		case strings.HasSuffix(ent.Name(), ".snap"):
			snaps++
		case strings.HasSuffix(ent.Name(), ".log"):
			wals++
		default:
			t.Errorf("unexpected file %s", ent.Name())
		}
	}
	if snaps != 1 || wals != 1 {
		t.Fatalf("shard dir has %d snapshots, %d wals; want 1 each", snaps, wals)
	}

	e2, kvs2 := openKV(t, dir, 1, Options{Sync: SyncAlways, CompactEvery: 5})
	defer e2.Close()
	n := 0
	e2.View(0, func() { n = len(kvs2[0].m) })
	if n != 23 {
		t.Fatalf("recovered %d keys after compaction, want 23", n)
	}
}

// TestEngineRecoveryAfterPartialCompaction: a crash between "new snapshot
// durable" and "old generation deleted" leaves both generations on disk;
// recovery must pick the newer one and sweep the rest.
func TestEngineRecoveryAfterPartialCompaction(t *testing.T) {
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 1, Options{Sync: SyncAlways})
	kvSet(t, e, 0, kvs[0], "a", "1")
	kvSet(t, e, 0, kvs[0], "b", "2")
	if err := e.Close(); err != nil { // Close compacts: generation rotates to 1
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-000")
	// Recreate the "crash before delete" layout: resurrect a stale old
	// generation alongside the valid new one.
	if err := os.WriteFile(filepath.Join(shardDir, walName(0)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	staleSnap := frameSnapshot([]byte(`{"stale":"yes"}`))
	if err := os.WriteFile(filepath.Join(shardDir, snapName(0)), staleSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	// And a leftover temp file from a torn snapshot write.
	if err := os.WriteFile(filepath.Join(shardDir, snapName(2)+".tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2, kvs2 := openKV(t, dir, 1, Options{Sync: SyncAlways})
	defer e2.Close()
	var a, b, stale string
	e2.View(0, func() { a, b, stale = kvs2[0].m["a"], kvs2[0].m["b"], kvs2[0].m["stale"] })
	if a != "1" || b != "2" || stale != "" {
		t.Fatalf("recovered a=%q b=%q stale=%q", a, b, stale)
	}
	// Stale generation and temp file swept.
	for _, name := range []string{walName(0), snapName(0), snapName(2) + ".tmp"} {
		if _, err := os.Stat(filepath.Join(shardDir, name)); !os.IsNotExist(err) {
			t.Errorf("%s not swept during recovery", name)
		}
	}
}

// TestEngineCorruptSnapshotFallsBack: an unreadable newest snapshot falls
// back to an older intact generation rather than failing the boot.
func TestEngineCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 1, Options{Sync: SyncAlways})
	kvSet(t, e, 0, kvs[0], "a", "1")
	if err := e.Compact(0); err != nil { // generation 1: snapshot holds a=1
		t.Fatal(err)
	}
	kvSet(t, e, 0, kvs[0], "b", "2")  // lives in wal-1
	if err := e.Close(); err != nil { // generation 2
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-000")
	// Corrupt the newest snapshot.
	if err := os.WriteFile(filepath.Join(shardDir, snapName(2)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Resurrect generation 1 (snapshot a=1 + wal with b=2) as the fallback.
	snap1, err := (&kvState{m: map[string]string{"a": "1"}}).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shardDir, snapName(1)), frameSnapshot(snap1), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := createWAL(filepath.Join(shardDir, walName(1)), SyncAlways, DefaultSyncEvery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(kvRecord("b", "2")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	e2, kvs2 := openKV(t, dir, 1, Options{Sync: SyncAlways})
	defer e2.Close()
	var a, b string
	e2.View(0, func() { a, b = kvs2[0].m["a"], kvs2[0].m["b"] })
	if a != "1" || b != "2" {
		t.Fatalf("fallback recovery: a=%q b=%q, want 1/2", a, b)
	}
}

func TestEngineManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	e, _ := openKV(t, dir, 4, Options{Sync: SyncNever})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	states := []ShardState{newKV(), newKV()}
	if _, err := Open(Options{Dir: dir}, states); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	n, ok, err := ReadManifest(dir)
	if err != nil || !ok || n != 4 {
		t.Fatalf("ReadManifest = %d, %v, %v", n, ok, err)
	}
	if _, ok, err := ReadManifest(t.TempDir()); ok || err != nil {
		t.Fatalf("fresh dir manifest = %v, %v", ok, err)
	}
}

func TestEngineMutateApplyError(t *testing.T) {
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 1, Options{Sync: SyncNever})
	defer e.Close()
	wantErr := fmt.Errorf("rejected")
	if err := e.Mutate(0, func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("Mutate = %v", err)
	}
	// A rejected mutation journals nothing and does not poison the shard.
	kvSet(t, e, 0, kvs[0], "a", "1")
}

func TestEngineNilRecordSkipsJournal(t *testing.T) {
	dir := t.TempDir()
	e, _ := openKV(t, dir, 1, Options{Sync: SyncNever})
	if err := e.Mutate(0, func() ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, kvs2 := openKV(t, dir, 1, Options{Sync: SyncNever})
	defer e2.Close()
	n := -1
	e2.View(0, func() { n = len(kvs2[0].m) })
	if n != 0 {
		t.Errorf("no-op mutation persisted %d keys", n)
	}
}

// TestEngineConcurrentShards: concurrent writers on distinct shards make
// progress without data races (run under -race) and all writes land.
func TestEngineConcurrentShards(t *testing.T) {
	const shards, perShard = 8, 50
	dir := t.TempDir()
	e, kvs := openKV(t, dir, shards, Options{Sync: SyncNever})
	var wg sync.WaitGroup
	for sIdx := 0; sIdx < shards; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				k := fmt.Sprintf("s%d-k%d", sIdx, i)
				if err := e.Mutate(sIdx, func() ([]byte, error) {
					kvs[sIdx].m[k] = "v"
					return kvRecord(k, "v"), nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(sIdx)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, kvs2 := openKV(t, dir, shards, Options{Sync: SyncNever})
	defer e2.Close()
	total := 0
	for i := range kvs2 {
		e2.View(i, func() { total += len(kvs2[i].m) })
	}
	if total != shards*perShard {
		t.Fatalf("recovered %d keys, want %d", total, shards*perShard)
	}
}
