package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestRecoveryTruncationProperty is the engine-level statement of the crash
// contract: record a mutation sequence with fsync=always, then for every
// byte-level truncation of the WAL (a torn write at an arbitrary offset),
// reopening the engine succeeds and yields exactly the state after some
// prefix of the sequence — specifically the records fully contained in the
// surviving bytes. No truncation point may lose an earlier record or
// resurrect a later one.
func TestRecoveryTruncationProperty(t *testing.T) {
	const nRecs = 40
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 1, Options{Sync: SyncAlways, CompactEvery: -1})
	// expected[i] = state after i records.
	expected := make([]map[string]string, nRecs+1)
	expected[0] = map[string]string{}
	for i := 0; i < nRecs; i++ {
		k := fmt.Sprintf("k%d", i%7) // overwrites exercise ordering
		v := fmt.Sprintf("v%d", i)
		kvSet(t, e, 0, kvs[0], k, v)
		next := map[string]string{}
		for kk, vv := range expected[i] {
			next[kk] = vv
		}
		next[k] = v
		expected[i+1] = next
	}
	// Hard kill: no Close. Grab the synced WAL bytes.
	walPath := filepath.Join(dir, "shard-000", walName(0))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, for computing how many records a cut preserves.
	var ends []int
	off := 0
	for i := 0; i < nRecs; i++ {
		ln := uint32(full[off]) | uint32(full[off+1])<<8 | uint32(full[off+2])<<16 | uint32(full[off+3])<<24
		off += frameHeaderSize + int(ln)
		ends = append(ends, off)
	}
	if off != len(full) {
		t.Fatalf("frame walk ended at %d, file is %d bytes", off, len(full))
	}

	scratch := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		// Rebuild a fresh "crashed" data dir with the WAL cut at this byte.
		caseDir := filepath.Join(scratch, fmt.Sprintf("cut-%04d", cut))
		shardDir := filepath.Join(caseDir, "shard-000")
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		man, _ := os.ReadFile(filepath.Join(dir, manifestName))
		if err := os.WriteFile(filepath.Join(caseDir, manifestName), man, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, walName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		e2, kvs2 := openKV(t, caseDir, 1, Options{Sync: SyncNever, CompactEvery: -1})
		survived := 0
		for _, end := range ends {
			if end <= cut {
				survived++
			}
		}
		var got map[string]string
		e2.View(0, func() {
			got = map[string]string{}
			for k, v := range kvs2[0].m {
				got[k] = v
			}
		})
		if !reflect.DeepEqual(got, expected[survived]) {
			t.Fatalf("cut at %d (=%d records): state %v, want %v", cut, survived, got, expected[survived])
		}
		// The reopened engine must accept new writes on the repaired log.
		kvSet(t, e2, 0, kvs2[0], "post", "recovery")
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
		os.RemoveAll(caseDir)
	}
}

// TestRecoveryTruncationWithSnapshot: torn tails after a compaction recover
// snapshot + surviving log suffix.
func TestRecoveryTruncationWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 1, Options{Sync: SyncAlways, CompactEvery: -1})
	for i := 0; i < 10; i++ {
		kvSet(t, e, 0, kvs[0], fmt.Sprintf("base%d", i), "x")
	}
	if err := e.Compact(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		kvSet(t, e, 0, kvs[0], fmt.Sprintf("tail%d", i), "y")
	}
	walPath := filepath.Join(dir, "shard-000", walName(1))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record's final byte off.
	if err := os.WriteFile(walPath, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	e2, kvs2 := openKV(t, dir, 1, Options{Sync: SyncNever, CompactEvery: -1})
	defer e2.Close()
	var n int
	var base0, tail3, tail4 string
	e2.View(0, func() {
		n = len(kvs2[0].m)
		base0, tail3, tail4 = kvs2[0].m["base0"], kvs2[0].m["tail3"], kvs2[0].m["tail4"]
	})
	if n != 14 || base0 != "x" || tail3 != "y" || tail4 != "" {
		t.Fatalf("recovered n=%d base0=%q tail3=%q tail4=%q", n, base0, tail3, tail4)
	}
}

// TestRecoveryIsIdempotent: recovering twice from the same crashed dir gives
// the same state (recovery repairs in place without losing anything).
func TestRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	e, kvs := openKV(t, dir, 2, Options{Sync: SyncAlways, CompactEvery: -1})
	for i := 0; i < 12; i++ {
		kvSet(t, e, i%2, kvs[i%2], fmt.Sprintf("k%d", i), "v")
	}
	// Tear shard 1's log mid-record.
	walPath := filepath.Join(dir, "shard-001", walName(0))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	dump := func() string {
		e2, kvs2 := openKV(t, dir, 2, Options{Sync: SyncNever, CompactEvery: -1})
		defer e2.Close()
		var states []map[string]string
		for i := range kvs2 {
			e2.View(i, func() { states = append(states, kvs2[i].m) })
		}
		b, err := json.Marshal(states)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := dump()
	second := dump()
	if first != second {
		t.Fatalf("recovery not idempotent:\n%s\nvs\n%s", first, second)
	}
}
