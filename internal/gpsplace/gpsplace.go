// Package gpsplace implements the Kang et al. time-space clustering
// algorithm ("Extracting places from traces of locations", WMASH 2004) that
// PMWare uses for GPS-based place discovery (paper Section 2.2.2): GPS
// coordinates are clustered incrementally along time, and clusters that
// persist past a stay threshold within a distance threshold become places.
package gpsplace

import (
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Params tunes the clusterer. Zero value is not useful; start from
// DefaultParams.
type Params struct {
	// ClusterRadiusM is the distance threshold: a fix within this radius of
	// the running cluster centroid extends the cluster.
	ClusterRadiusM float64
	// MinStay is the temporal threshold for a cluster to become a place
	// visit.
	MinStay time.Duration
	// OutlierTolerance is how many consecutive far fixes are absorbed (GPS
	// glitches) before the cluster closes.
	OutlierTolerance int
	// MergeRadiusM is the distance at which a new cluster is recognized as
	// an existing place.
	MergeRadiusM float64
}

// DefaultParams returns the parameters used by the deployment study.
func DefaultParams() Params {
	return Params{
		ClusterRadiusM:   120,
		MinStay:          10 * time.Minute,
		OutlierTolerance: 3,
		MergeRadiusM:     150,
	}
}

// Visit is one stay interval at a GPS place.
type Visit struct {
	Arrive time.Time
	Depart time.Time
}

// Duration returns the visit length.
func (v Visit) Duration() time.Duration { return v.Depart.Sub(v.Arrive) }

// Place is a discovered GPS place: the P_i = {latitude, longitude} signature
// of paper Section 2.1.1.
type Place struct {
	ID     int
	Center geo.LatLng
	Visits []Visit

	fixCount int
}

// TotalDwell sums visit durations.
func (p *Place) TotalDwell() time.Duration {
	var d time.Duration
	for _, v := range p.Visits {
		d += v.Duration()
	}
	return d
}

// EventKind distinguishes clusterer events.
type EventKind int

// Clusterer event kinds.
const (
	Arrival EventKind = iota + 1
	Departure
)

// Event is an online place event. Arrival events are emitted retroactively —
// once the stay threshold is crossed — with At set to the true cluster start.
type Event struct {
	Kind    EventKind
	PlaceID int
	At      time.Time
}

// Clusterer is the online Kang state machine. Not safe for concurrent use.
type Clusterer struct {
	params Params
	places []*Place

	// running cluster
	pts      []geo.LatLng
	centroid geo.LatLng
	start    time.Time
	last     time.Time
	outliers []trace.GPSFix

	// currentPlace is set once the running cluster has crossed MinStay and
	// been promoted/matched.
	currentPlace *Place
}

// NewClusterer returns an empty clusterer.
func NewClusterer(p Params) *Clusterer { return &Clusterer{params: p} }

// Places returns the places discovered so far.
func (c *Clusterer) Places() []*Place { return c.places }

// Current returns the place the user is currently staying at, or nil.
func (c *Clusterer) Current() *Place { return c.currentPlace }

// Observe consumes one valid GPS fix in time order and returns any events.
func (c *Clusterer) Observe(fix trace.GPSFix) []Event {
	if !fix.Valid {
		return nil
	}
	if len(c.pts) == 0 {
		c.open(fix)
		return nil
	}
	if geo.Distance(c.centroid, fix.Pos) <= c.params.ClusterRadiusM {
		c.outliers = nil
		c.extend(fix)
		return c.maybePromote(fix.At)
	}
	// Far fix: tolerate a few (GPS glitches), then close the cluster.
	c.outliers = append(c.outliers, fix)
	if len(c.outliers) < c.params.OutlierTolerance {
		return nil
	}
	events := c.close()
	// Re-open from the buffered outliers (they are the new location).
	outliers := c.outliers
	c.outliers = nil
	c.open(outliers[0])
	for _, o := range outliers[1:] {
		if geo.Distance(c.centroid, o.Pos) <= c.params.ClusterRadiusM {
			c.extend(o)
		}
	}
	return events
}

func (c *Clusterer) open(fix trace.GPSFix) {
	c.pts = c.pts[:0]
	c.pts = append(c.pts, fix.Pos)
	c.centroid = fix.Pos
	c.start = fix.At
	c.last = fix.At
	c.currentPlace = nil
}

func (c *Clusterer) extend(fix trace.GPSFix) {
	c.pts = append(c.pts, fix.Pos)
	c.last = fix.At
	// Incremental centroid.
	n := float64(len(c.pts))
	c.centroid.Lat += (fix.Pos.Lat - c.centroid.Lat) / n
	c.centroid.Lng += (fix.Pos.Lng - c.centroid.Lng) / n
	if c.currentPlace != nil {
		// Refine the place centroid while dwelling.
		c.currentPlace.fixCount++
		k := float64(c.currentPlace.fixCount)
		c.currentPlace.Center.Lat += (fix.Pos.Lat - c.currentPlace.Center.Lat) / k
		c.currentPlace.Center.Lng += (fix.Pos.Lng - c.currentPlace.Center.Lng) / k
	}
}

// maybePromote turns the running cluster into a place visit once it crosses
// the stay threshold.
func (c *Clusterer) maybePromote(now time.Time) []Event {
	if c.currentPlace != nil || now.Sub(c.start) < c.params.MinStay {
		return nil
	}
	place := c.match(c.centroid)
	if place == nil {
		place = &Place{ID: len(c.places), Center: c.centroid, fixCount: len(c.pts)}
		c.places = append(c.places, place)
	}
	c.currentPlace = place
	return []Event{{Kind: Arrival, PlaceID: place.ID, At: c.start}}
}

// close ends the running cluster, recording the visit if it was promoted.
func (c *Clusterer) close() []Event {
	var events []Event
	if c.currentPlace != nil {
		c.currentPlace.Visits = append(c.currentPlace.Visits, Visit{Arrive: c.start, Depart: c.last})
		events = append(events, Event{Kind: Departure, PlaceID: c.currentPlace.ID, At: c.last})
		c.currentPlace = nil
	}
	c.pts = c.pts[:0]
	return events
}

// match finds an existing place within MergeRadiusM of the centroid.
func (c *Clusterer) match(p geo.LatLng) *Place {
	var best *Place
	bestD := c.params.MergeRadiusM
	for _, pl := range c.places {
		if d := geo.Distance(pl.Center, p); d <= bestD {
			best, bestD = pl, d
		}
	}
	return best
}

// Flush closes any open cluster at trace end and returns final events.
func (c *Clusterer) Flush() []Event { return c.close() }

// Result is the output of offline discovery.
type Result struct {
	Places []*Place
	Events []Event
}

// Discover runs the clusterer over a full fix trace.
func Discover(fixes []trace.GPSFix, p Params) *Result {
	c := NewClusterer(p)
	var events []Event
	for _, f := range fixes {
		events = append(events, c.Observe(f)...)
	}
	events = append(events, c.Flush()...)

	// Keep only places that retained at least one visit. IDs are preserved
	// (possibly with gaps) so events keep referring to the right place.
	var places []*Place
	for _, pl := range c.places {
		if len(pl.Visits) == 0 {
			continue
		}
		places = append(places, pl)
	}
	return &Result{Places: places, Events: events}
}
