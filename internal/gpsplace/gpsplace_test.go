package gpsplace

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

var origin = geo.LatLng{Lat: 28.6139, Lng: 77.2090}

// fixSeq builds one fix per minute at the given positions.
func fixSeq(start time.Time, positions ...geo.LatLng) []trace.GPSFix {
	out := make([]trace.GPSFix, len(positions))
	for i, p := range positions {
		out[i] = trace.GPSFix{At: start.Add(time.Duration(i) * time.Minute), Pos: p, AccuracyMeters: 10, Valid: true}
	}
	return out
}

// jitterAround returns n positions within radius meters of center.
func jitterAround(center geo.LatLng, radius float64, n int, r *rand.Rand) []geo.LatLng {
	out := make([]geo.LatLng, n)
	for i := range out {
		out[i] = geo.Offset(center, r.Float64()*360, r.Float64()*radius)
	}
	return out
}

// walkBetween returns positions walking from a to b in n steps.
func walkBetween(a, b geo.LatLng, n int) []geo.LatLng {
	out := make([]geo.LatLng, n)
	for i := range out {
		out[i] = geo.Interpolate(a, b, float64(i+1)/float64(n+1))
	}
	return out
}

func TestDiscoverSingleStay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pos := jitterAround(origin, 40, 30, r) // 30 min within 40 m
	res := Discover(fixSeq(simclock.Epoch, pos...), DefaultParams())
	if len(res.Places) != 1 {
		t.Fatalf("places = %d, want 1", len(res.Places))
	}
	p := res.Places[0]
	if d := geo.Distance(p.Center, origin); d > 60 {
		t.Errorf("centroid %.1f m from truth", d)
	}
	if len(p.Visits) != 1 {
		t.Errorf("visits = %d, want 1", len(p.Visits))
	}
	if p.TotalDwell() < 25*time.Minute {
		t.Errorf("dwell = %v", p.TotalDwell())
	}
}

func TestDiscoverTwoPlacesWithTravel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	b := geo.Offset(origin, 90, 2000)
	var pos []geo.LatLng
	pos = append(pos, jitterAround(origin, 40, 20, r)...)
	pos = append(pos, walkBetween(origin, b, 10)...)
	pos = append(pos, jitterAround(b, 40, 20, r)...)
	res := Discover(fixSeq(simclock.Epoch, pos...), DefaultParams())
	if len(res.Places) != 2 {
		t.Fatalf("places = %d, want 2", len(res.Places))
	}
	// Arrival before departure, alternating, consistent IDs.
	if len(res.Events) != 4 {
		t.Fatalf("events = %d, want 4 (2 arrivals + 2 departures)", len(res.Events))
	}
	if res.Events[0].Kind != Arrival || res.Events[1].Kind != Departure {
		t.Error("event order wrong")
	}
	if res.Events[0].PlaceID != res.Events[1].PlaceID {
		t.Error("arrival/departure place mismatch")
	}
}

func TestRevisitMergesIntoSamePlace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := geo.Offset(origin, 90, 1500)
	var pos []geo.LatLng
	pos = append(pos, jitterAround(origin, 40, 15, r)...)
	pos = append(pos, walkBetween(origin, b, 8)...)
	pos = append(pos, jitterAround(b, 40, 15, r)...)
	pos = append(pos, walkBetween(b, origin, 8)...)
	pos = append(pos, jitterAround(origin, 40, 15, r)...)
	res := Discover(fixSeq(simclock.Epoch, pos...), DefaultParams())
	if len(res.Places) != 2 {
		t.Fatalf("places = %d, want 2 (revisit must merge)", len(res.Places))
	}
	var first *Place
	for _, p := range res.Places {
		if geo.Distance(p.Center, origin) < 100 {
			first = p
		}
	}
	if first == nil {
		t.Fatal("origin place missing")
	}
	if len(first.Visits) != 2 {
		t.Errorf("origin visits = %d, want 2", len(first.Visits))
	}
}

func TestShortStopIgnored(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	b := geo.Offset(origin, 90, 1500)
	c := geo.Offset(origin, 90, 3000)
	var pos []geo.LatLng
	pos = append(pos, jitterAround(origin, 40, 15, r)...)
	pos = append(pos, walkBetween(origin, b, 5)...)
	pos = append(pos, jitterAround(b, 40, 5, r)...) // 5 min: below MinStay
	pos = append(pos, walkBetween(b, c, 5)...)
	pos = append(pos, jitterAround(c, 40, 15, r)...)
	res := Discover(fixSeq(simclock.Epoch, pos...), DefaultParams())
	for _, p := range res.Places {
		if geo.Distance(p.Center, b) < 200 {
			t.Errorf("short stop at %v became a place", b)
		}
	}
	if len(res.Places) != 2 {
		t.Errorf("places = %d, want 2", len(res.Places))
	}
}

func TestOutlierGlitchAbsorbed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pos := jitterAround(origin, 30, 15, r)
	// One wild glitch mid-dwell.
	glitch := geo.Offset(origin, 45, 900)
	pos = append(pos[:8], append([]geo.LatLng{glitch}, pos[8:]...)...)
	res := Discover(fixSeq(simclock.Epoch, pos...), DefaultParams())
	if len(res.Places) != 1 {
		t.Fatalf("places = %d, want 1 (glitch split the cluster)", len(res.Places))
	}
	if len(res.Places[0].Visits) != 1 {
		t.Errorf("visits = %d, want 1", len(res.Places[0].Visits))
	}
}

func TestInvalidFixesSkipped(t *testing.T) {
	c := NewClusterer(DefaultParams())
	if ev := c.Observe(trace.GPSFix{At: simclock.Epoch, Valid: false}); len(ev) != 0 {
		t.Error("invalid fix produced events")
	}
	if len(c.Places()) != 0 {
		t.Error("invalid fix created state")
	}
}

func TestArrivalBackdated(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pos := jitterAround(origin, 30, 30, r)
	c := NewClusterer(DefaultParams())
	var arrival *Event
	for i, f := range fixSeq(simclock.Epoch, pos...) {
		for _, e := range c.Observe(f) {
			if e.Kind == Arrival {
				e := e
				arrival = &e
				// Arrival should not fire before MinStay has elapsed...
				if elapsed := f.At.Sub(simclock.Epoch); elapsed < DefaultParams().MinStay {
					t.Errorf("arrival fired after only %v (fix %d)", elapsed, i)
				}
			}
		}
	}
	if arrival == nil {
		t.Fatal("no arrival")
	}
	// ...but its timestamp is the true cluster start.
	if !arrival.At.Equal(simclock.Epoch) {
		t.Errorf("arrival At = %v, want cluster start %v", arrival.At, simclock.Epoch)
	}
}

func TestCurrentTracksDwell(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := NewClusterer(DefaultParams())
	for _, f := range fixSeq(simclock.Epoch, jitterAround(origin, 30, 15, r)...) {
		c.Observe(f)
	}
	if c.Current() == nil {
		t.Fatal("Current nil during a 15-min dwell")
	}
	c.Flush()
	if c.Current() != nil {
		t.Error("Current survives Flush")
	}
}

func TestFlushClosesOpenVisit(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	c := NewClusterer(DefaultParams())
	for _, f := range fixSeq(simclock.Epoch, jitterAround(origin, 30, 20, r)...) {
		c.Observe(f)
	}
	events := c.Flush()
	if len(events) != 1 || events[0].Kind != Departure {
		t.Fatalf("flush events = %v, want one departure", events)
	}
	if len(c.Places()[0].Visits) != 1 {
		t.Error("flush did not record the visit")
	}
}

func TestDiscoverOnSimulatedDay(t *testing.T) {
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(51))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	a := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	it, err := mobility.BuildItinerary(a, w, simclock.Epoch, 2, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(52)))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(53)))
	fixes := s.CollectGPS(it.Start, it.End, time.Minute)
	res := Discover(fixes, DefaultParams())

	if len(res.Places) < 2 {
		t.Fatalf("places = %d, want >= 2 (home and work)", len(res.Places))
	}
	// Home and work centroids must be recovered.
	near := func(target geo.LatLng) bool {
		for _, p := range res.Places {
			if geo.Distance(p.Center, target) < 150 {
				return true
			}
		}
		return false
	}
	if !near(home.Center) {
		t.Error("home not recovered from GPS trace")
	}
	if !near(work.Center) {
		t.Error("work not recovered from GPS trace")
	}
}
