package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/wifi"
)

// Visit is one stay interval at a unified place.
type Visit struct {
	Arrive time.Time
	Depart time.Time
}

// Duration returns the stay length.
func (v Visit) Duration() time.Duration { return v.Depart.Sub(v.Arrive) }

// UnifiedPlace is the middleware's place object: the result of fusing the
// per-interface discovery algorithms into one identity that connected
// applications see. Sources record which algorithms contributed.
type UnifiedPlace struct {
	ID     string
	Label  string
	Center geo.LatLng
	Visits []Visit

	GSMPlaceID  int // -1 when not derived from a GSM place
	WiFiPlaceID int // -1 when no WiFi evidence
}

// TotalDwell sums visit durations.
func (p *UnifiedPlace) TotalDwell() time.Duration {
	var d time.Duration
	for _, v := range p.Visits {
		d += v.Duration()
	}
	return d
}

// fuseMinOverlap is the temporal overlap required to attribute a GSM visit
// to a WiFi place.
const fuseMinOverlap = 5 * time.Minute

// FuseGSMWiFi produces unified places from GSM discovery augmented with
// opportunistic WiFi sensing — the pipeline evaluated in the paper's
// deployment study. WiFi evidence splits GSM places that merged several
// nearby venues: if the visits of one GSM place match two different WiFi
// signatures, they become two unified places ("most of merged places ...
// can be easily avoided with the location interfaces such as WiFi",
// Section 4).
func FuseGSMWiFi(gsmPlaces []*gsm.Place, wifiPlaces []*wifi.Place) []*UnifiedPlace {
	var out []*UnifiedPlace
	for _, gp := range gsmPlaces {
		// Partition this GSM place's visits by best-overlapping WiFi place.
		groups := map[int][]Visit{} // wifi place id (-1 = none) -> visits
		for _, v := range gp.Visits {
			wid := bestWiFiPlace(v, wifiPlaces)
			groups[wid] = append(groups[wid], Visit{Arrive: v.Arrive, Depart: v.Depart})
		}

		// Splitting a GSM place needs corroborated WiFi evidence: a WiFi
		// group seen on a single visit is more likely signature drift than a
		// distinct venue. The dominant group absorbs single-visit groups and
		// the visits with no WiFi evidence at all (opportunistic sensing is
		// incomplete, not contradictory).
		dominant := -1
		dominantDwell := time.Duration(0)
		for wid, vs := range groups {
			if wid == -1 {
				continue
			}
			var d time.Duration
			for _, v := range vs {
				d += v.Duration()
			}
			if d > dominantDwell {
				dominant, dominantDwell = wid, d
			}
		}
		if dominant != -1 {
			for wid, vs := range groups {
				if wid == dominant {
					continue
				}
				if wid == -1 || len(vs) < 2 {
					groups[dominant] = append(groups[dominant], vs...)
					delete(groups, wid)
				}
			}
		}
		wids := make([]int, 0, len(groups))
		for wid := range groups {
			wids = append(wids, wid)
		}
		sort.Ints(wids)

		for _, wid := range wids {
			vs := groups[wid]
			sort.Slice(vs, func(i, j int) bool { return vs[i].Arrive.Before(vs[j].Arrive) })
			out = append(out, &UnifiedPlace{
				Visits:      vs,
				GSMPlaceID:  gp.ID,
				WiFiPlaceID: wid,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Visits) == 0 || len(out[j].Visits) == 0 {
			return len(out[i].Visits) > len(out[j].Visits)
		}
		return out[i].Visits[0].Arrive.Before(out[j].Visits[0].Arrive)
	})
	for i, p := range out {
		p.ID = fmt.Sprintf("p%d", i)
	}
	return out
}

func bestWiFiPlace(v gsm.Visit, wifiPlaces []*wifi.Place) int {
	best := -1
	var bestOv time.Duration
	for _, wp := range wifiPlaces {
		for _, wv := range wp.Visits {
			ov := overlapDuration(v.Arrive, v.Depart, wv.Arrive, wv.Depart)
			if ov > bestOv {
				bestOv, best = ov, wp.ID
			}
		}
	}
	if bestOv < fuseMinOverlap {
		return -1
	}
	return best
}

func overlapDuration(aS, aE, bS, bE time.Time) time.Duration {
	s := aS
	if bS.After(s) {
		s = bS
	}
	e := aE
	if bE.Before(e) {
		e = bE
	}
	if e.Before(s) {
		return 0
	}
	return e.Sub(s)
}

// UnifyGSM converts raw GSM places into unified places without WiFi
// augmentation (the GSM-only ablation pipeline).
func UnifyGSM(gsmPlaces []*gsm.Place) []*UnifiedPlace {
	out := make([]*UnifiedPlace, 0, len(gsmPlaces))
	for i, gp := range gsmPlaces {
		up := &UnifiedPlace{
			ID:          fmt.Sprintf("p%d", i),
			GSMPlaceID:  gp.ID,
			WiFiPlaceID: -1,
		}
		for _, v := range gp.Visits {
			up.Visits = append(up.Visits, Visit{Arrive: v.Arrive, Depart: v.Depart})
		}
		out = append(out, up)
	}
	return out
}

// UnifyWiFi converts raw WiFi places into unified places (the WiFi-only
// ablation pipeline).
func UnifyWiFi(wifiPlaces []*wifi.Place) []*UnifiedPlace {
	out := make([]*UnifiedPlace, 0, len(wifiPlaces))
	for i, wp := range wifiPlaces {
		up := &UnifiedPlace{
			ID:          fmt.Sprintf("p%d", i),
			GSMPlaceID:  -1,
			WiFiPlaceID: wp.ID,
		}
		for _, v := range wp.Visits {
			up.Visits = append(up.Visits, Visit{Arrive: v.Arrive, Depart: v.Depart})
		}
		out = append(out, up)
	}
	return out
}
