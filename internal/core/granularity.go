// Package core implements the PMWare Mobile Service (PMS): the middleware
// that takes over place and route sensing for connected third-party
// applications (paper Section 2.2). It contains the intent bus the apps talk
// over, the connected-application registry, the user privacy preferences,
// the triggered-sensing scheduler, and the inference engine that fuses the
// GSM/WiFi/GPS discovery algorithms and builds mobility profiles.
package core

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// Granularity is the place accuracy tier an application requires or a user
// permits (paper Figure 2 categorizes applications into these three tiers).
// Finer granularities have larger values, so the lattice order is numeric.
type Granularity int

// Granularity tiers, coarse to fine.
const (
	// GranularityArea is area-level: "user is in the shopping street".
	GranularityArea Granularity = iota + 1
	// GranularityBuilding is building-level: "user is at the library".
	GranularityBuilding
	// GranularityRoom is room-level: "user is in conference room 2".
	GranularityRoom
)

var granularityNames = map[Granularity]string{
	GranularityArea:     "area",
	GranularityBuilding: "building",
	GranularityRoom:     "room",
}

// String returns the tier name.
func (g Granularity) String() string {
	if s, ok := granularityNames[g]; ok {
		return s
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// Valid reports whether g is a known tier.
func (g Granularity) Valid() bool {
	_, ok := granularityNames[g]
	return ok
}

// FinerThan reports whether g is strictly finer than other.
func (g Granularity) FinerThan(other Granularity) bool { return g > other }

// Clamp returns the coarser of the requested and the permitted granularity —
// the privacy rule of the user-preference module (Section 2.2.1): an app may
// ask for building level, but if the user permits only area level, area
// level is what it gets.
func Clamp(requested, permitted Granularity) Granularity {
	if requested > permitted {
		return permitted
	}
	return requested
}

// fuzzGridMeters is the coordinate snapping grid per tier; coarser tiers
// reveal less precise positions.
var fuzzGridMeters = map[Granularity]float64{
	GranularityRoom:     0, // exact
	GranularityBuilding: 150,
	GranularityArea:     750,
}

// AccuracyMeters returns the positional uncertainty delivered at the tier.
func (g Granularity) AccuracyMeters() float64 {
	switch g {
	case GranularityRoom:
		return 15
	case GranularityBuilding:
		return 150
	default:
		return 750
	}
}

// DegradeCoordinates snaps a position to the tier's disclosure grid, so a
// payload delivered at area level cannot be inverted to building identity.
func DegradeCoordinates(p geo.LatLng, g Granularity) geo.LatLng {
	grid := fuzzGridMeters[g]
	if grid <= 0 || p.IsZero() {
		return p
	}
	// Convert the grid to degrees. The longitude step is computed at the
	// snapped latitude so the mapping is idempotent.
	latStep := grid / 111195.0
	lat := math.Round(p.Lat/latStep) * latStep
	lngStep := grid / (111195.0 * math.Cos(lat*math.Pi/180))
	return geo.LatLng{
		Lat: lat,
		Lng: math.Round(p.Lng/lngStep) * lngStep,
	}
}
