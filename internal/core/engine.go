package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/route"
	"repro/internal/simclock"
	"repro/internal/social"
	"repro/internal/wifi"
)

// gsmTick is the base sampler: GSM is tracked continuously because the modem
// is camped on the network anyway (Section 2.2.2).
func (s *Service) gsmTick(c *simclock.Clock) {
	obs := s.sensors.SampleGSM(c.Now())
	s.meter.Charge(energy.GSM, 1)
	s.gsmObs = append(s.gsmObs, obs)

	if s.tracker == nil {
		return
	}
	for _, ev := range s.tracker.Observe(obs) {
		switch ev.Kind {
		case gsm.Arrival:
			s.currentGSM = ev.PlaceID
			if up := s.resolveUnifiedByGSM(ev.PlaceID); up != nil {
				s.liveArrival(up, ev.At)
			}
		case gsm.Departure:
			s.currentGSM = -1
			if up := s.resolveUnifiedByGSM(ev.PlaceID); up != nil {
				s.liveDeparture(up, ev.At)
			}
		}
	}
}

// accelTick drives the movement detector when any active requirement needs
// triggering (building-level accuracy or high-accuracy routes).
func (s *Service) accelTick(c *simclock.Clock) {
	if s.Prefs.Disabled() {
		return
	}
	d := s.Registry.DemandAt(c.Now())
	if !(d.Finest >= GranularityBuilding || d.Routes == RouteHigh) {
		return
	}
	sample := s.sensors.SampleActivity(c.Now())
	s.meter.Charge(energy.Accelerometer, 1)
	s.activityLog = append(s.activityLog, sample)

	// Debounce: a state change needs two consecutive agreeing samples, so
	// classifier noise does not fire bursts.
	if sample.Moving == s.moving {
		s.pendingMoves = 0
		return
	}
	s.pendingMoves++
	if s.pendingMoves < 2 {
		return
	}
	s.pendingMoves = 0
	s.moving = sample.Moving
	if s.moving {
		s.m.planMoving.Inc()
	} else {
		s.m.planStationary.Inc()
	}

	if s.moving {
		// Departure candidate: confirm with a WiFi burst; start route
		// tracking in high-accuracy mode.
		if d.Finest >= GranularityBuilding {
			s.burstLeft = s.cfg.WiFiBurstScans
		}
		if d.Routes == RouteHigh && !s.routeTracking {
			s.beginTrip(c)
		}
		return
	}
	// Arrival candidate: refine the new place with a WiFi burst; close any
	// tracked trip.
	if d.Finest >= GranularityBuilding {
		s.burstLeft = s.cfg.WiFiBurstScans
	}
	if s.routeTracking {
		s.endTrip(c.Now())
	}
}

// minuteTick runs the low-rate housekeeping: burst and opportunistic WiFi,
// room-level duty cycles, and social scans.
func (s *Service) minuteTick(c *simclock.Clock) {
	if s.Prefs.Disabled() {
		return
	}
	now := c.Now()
	d := s.Registry.DemandAt(now)

	// WiFi burst in progress.
	if s.burstLeft > 0 && d.Finest >= GranularityBuilding {
		s.burstLeft--
		s.doWiFiScan(now)
	} else if d.Finest == GranularityRoom && now.Sub(s.lastRoomWiFi) >= s.cfg.RoomWiFiEvery {
		s.lastRoomWiFi = now
		s.doWiFiScan(now)
	} else if d.Finest >= GranularityBuilding && now.Sub(s.lastWiFiScan) >= s.cfg.OpportunisticWiFiEvery {
		// Opportunistic scan: WiFi is on for data transfers anyway.
		s.doWiFiScan(now)
	}

	// Room-level accuracy additionally duty-cycles GPS.
	if d.Finest == GranularityRoom && now.Sub(s.lastRoomGPS) >= s.cfg.RoomGPSEvery {
		s.lastRoomGPS = now
		fix := s.sensors.SampleGPS(now)
		s.meter.Charge(energy.GPS, 1)
		if fix.Valid {
			s.gpsFix = append(s.gpsFix, fix)
		}
	}

	// Social discovery at tracked places.
	if d.Social && s.currentPlace != "" && now.Sub(s.lastBluetooth) >= s.cfg.BluetoothEvery {
		if d.SocialEverywhere || d.SocialTargets[s.currentPlace] {
			s.lastBluetooth = now
			peers := s.sensors.SampleBluetooth(now, s.cfg.Peers)
			s.meter.Charge(energy.Bluetooth, 1)
			closed := s.socialDetector.Observe(social.Sighting{At: now, PeerIDs: peers, PlaceID: s.currentPlace})
			s.recordEncounters(closed)
		}
	}
}

// doWiFiScan performs one scan, charges it, and feeds the SensLoc detector.
func (s *Service) doWiFiScan(now time.Time) {
	scan := s.sensors.SampleWiFi(now)
	s.meter.Charge(energy.WiFi, 1)
	s.lastWiFiScan = now

	for _, ev := range s.wifiDetector.Observe(scan) {
		up := s.resolveUnifiedByWiFi(ev.PlaceID)
		if up == nil {
			continue // place not yet in the unified store (pre-discovery)
		}
		switch ev.Kind {
		case wifiArrival:
			s.liveArrival(up, ev.At)
		case wifiDeparture:
			s.liveDeparture(up, ev.At)
		}
	}
}

// beginTrip starts high-accuracy route tracking: GPS fixes at
// RouteGPSInterval until the next arrival.
func (s *Service) beginTrip(c *simclock.Clock) {
	s.routeTracking = true
	s.tripStart = c.Now()
	s.tripFromPlace = s.currentPlace
	s.tripFixes = s.tripFixes[:0]
	s.tripTicker = c.Every(s.cfg.RouteGPSInterval, func(cl *simclock.Clock) {
		if !s.routeTracking {
			return
		}
		fix := s.sensors.SampleGPS(cl.Now())
		s.meter.Charge(energy.GPS, 1)
		if fix.Valid {
			s.tripFixes = append(s.tripFixes, fix)
			s.gpsFix = append(s.gpsFix, fix)
		}
	})
}

// endTrip closes the tracked trip, merges it into the route store, and
// broadcasts ActionRouteComplete.
func (s *Service) endTrip(now time.Time) {
	s.routeTracking = false
	if s.tripTicker != nil {
		s.tripTicker.Cancel()
		s.tripTicker = nil
	}
	if len(s.tripFixes) < 2 {
		return
	}
	var path geo.Polyline
	for _, f := range s.tripFixes {
		path = append(path, f.Pos)
	}
	path = path.Resample(s.cfg.RouteParams.ResampleM)

	// Merge into known GPS routes by geometry.
	var matched *route.GPSRoute
	bestD := s.cfg.RouteParams.GPSMatchDistanceM
	for _, r := range s.routesGPS {
		if d := geo.HausdorffDistance(r.Path, path); d <= bestD {
			matched, bestD = r, d
		}
	}
	trip := route.Trip{Start: s.tripStart, End: now}
	if matched == nil {
		matched = &route.GPSRoute{ID: len(s.routesGPS), Path: path, Trips: []route.Trip{trip}}
		s.routesGPS = append(s.routesGPS, matched)
	} else {
		matched.Trips = append(matched.Trips, trip)
	}

	info := &RouteInfo{
		ID:           routeID("gps", matched.ID),
		FromPlaceID:  s.tripFromPlace,
		ToPlaceID:    s.currentPlace,
		Start:        s.tripStart,
		End:          now,
		HighAccuracy: true,
		LengthMeters: path.Length(),
	}
	s.broadcastRoute(info)
}

// liveArrival delivers an arrival event unless it duplicates the current
// state.
func (s *Service) liveArrival(up *UnifiedPlace, at time.Time) {
	if s.currentPlace == up.ID {
		return
	}
	if s.currentPlace != "" {
		if prev := s.placeByID(s.currentPlace); prev != nil {
			s.broadcastPlace(ActionPlaceDeparture, s.placeInfoAt(prev, at))
		}
	}
	s.currentPlace = up.ID
	s.broadcastPlace(ActionPlaceArrival, s.placeInfoAt(up, at))
}

// liveDeparture delivers a departure event if we were at that place.
func (s *Service) liveDeparture(up *UnifiedPlace, at time.Time) {
	if s.currentPlace != up.ID {
		return
	}
	s.currentPlace = ""
	s.broadcastPlace(ActionPlaceDeparture, s.placeInfoAt(up, at))
}

func (s *Service) recordEncounters(closed []social.Encounter) {
	for _, e := range closed {
		s.encounters = append(s.encounters, e)
		s.broadcastEncounter(&EncounterInfo{PeerID: e.PeerID, PlaceID: e.PlaceID, Start: e.Start, End: e.End})
	}
}

// placeByID finds a unified place.
func (s *Service) placeByID(id string) *UnifiedPlace {
	for _, p := range s.places {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// resolveUnifiedByGSM maps a GSM place to the unified place with the largest
// dwell among those it contributed to.
func (s *Service) resolveUnifiedByGSM(gsmID int) *UnifiedPlace {
	var best *UnifiedPlace
	var bestDwell time.Duration
	for _, p := range s.places {
		if p.GSMPlaceID != gsmID {
			continue
		}
		if d := p.TotalDwell(); best == nil || d > bestDwell {
			best, bestDwell = p, d
		}
	}
	return best
}

// resolveUnifiedByWiFi maps a WiFi place to its unified place.
func (s *Service) resolveUnifiedByWiFi(wifiID int) *UnifiedPlace {
	for _, p := range s.places {
		if p.WiFiPlaceID == wifiID {
			return p
		}
	}
	return nil
}

// placeInfo builds the full-precision payload for a place.
func (s *Service) placeInfo(up *UnifiedPlace) PlaceInfo {
	return PlaceInfo{
		ID:             up.ID,
		Label:          up.Label,
		Center:         up.Center,
		AccuracyMeters: 15,
		Granularity:    GranularityRoom,
		VisitCount:     len(up.Visits),
	}
}

func (s *Service) placeInfoAt(up *UnifiedPlace, _ time.Time) PlaceInfo {
	return s.placeInfo(up)
}

// broadcastPlace delivers the place intent to each connected app at the
// app's effective granularity: requirement clamped by the user's privacy
// permission, payload degraded accordingly. Suppressed entirely by the kill
// switch.
func (s *Service) broadcastPlace(action string, info PlaceInfo) {
	if s.Prefs.Disabled() {
		return
	}
	now := s.clock.Now()
	for _, req := range s.Registry.All() {
		if !req.ActiveAt(now) {
			continue
		}
		eff := s.Prefs.EffectiveGranularity(req.AppID, req.Granularity)
		payload := DegradePlace(info, eff)
		in := Intent{Action: action, At: now, Place: &payload}
		if s.Bus.Deliver(req.AppID, in) {
			s.eventsEmitted++
		}
	}
}

func (s *Service) broadcastRoute(info *RouteInfo) {
	if s.Prefs.Disabled() {
		return
	}
	n := s.Bus.Broadcast(Intent{Action: ActionRouteComplete, At: s.clock.Now(), Route: info})
	s.eventsEmitted += n
}

func (s *Service) broadcastEncounter(info *EncounterInfo) {
	if s.Prefs.Disabled() {
		return
	}
	n := s.Bus.Broadcast(Intent{Action: ActionEncounter, At: s.clock.Now(), Encounter: info})
	s.eventsEmitted += n
}

func routeID(kind string, id int) string {
	return fmt.Sprintf("%s-%d", kind, id)
}

// WiFi detector event kinds, aliased for readability at the call site.
const (
	wifiArrival   = wifi.Arrival
	wifiDeparture = wifi.Departure
)

// sortPlacesByFirstVisit orders places deterministically.
func sortPlacesByFirstVisit(places []*UnifiedPlace) {
	sort.Slice(places, func(i, j int) bool {
		if len(places[i].Visits) == 0 || len(places[j].Visits) == 0 {
			return len(places[i].Visits) > len(places[j].Visits)
		}
		return places[i].Visits[0].Arrive.Before(places[j].Visits[0].Arrive)
	})
}
