package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// RouteAccuracy selects the route-tracking mode an application needs (paper
// Section 2.2.2): low accuracy uses only GSM information; high accuracy uses
// WiFi to detect departure and GPS to track the trajectory.
type RouteAccuracy int

// Route-tracking modes.
const (
	RouteNone RouteAccuracy = iota
	RouteLow
	RouteHigh
)

// String names the mode.
func (r RouteAccuracy) String() string {
	switch r {
	case RouteNone:
		return "none"
	case RouteLow:
		return "low"
	case RouteHigh:
		return "high"
	default:
		return fmt.Sprintf("RouteAccuracy(%d)", int(r))
	}
}

// Requirement is what a connected application registers with PMS: the place
// granularity it needs, an optional time-of-day tracking window, and whether
// it needs routes or social contacts. Requirements drive the triggered-
// sensing plan (Section 2.2.4: "requirements of the connected applications
// influence the decision of sensing different location interfaces").
type Requirement struct {
	AppID       string
	Granularity Granularity
	// FromHour/ToHour bound tracking to a daily window, e.g. 9 and 18 for
	// "between 9 AM and 6 PM". FromHour == ToHour means all day.
	FromHour int
	ToHour   int
	// Routes selects route tracking.
	Routes RouteAccuracy
	// Social requests social-contact discovery. TargetPlaceIDs optionally
	// narrows it to specific places (targeted sensing).
	Social         bool
	TargetPlaceIDs []string
}

// Validate rejects malformed requirements.
func (r Requirement) Validate() error {
	if r.AppID == "" {
		return fmt.Errorf("core: requirement has empty app id")
	}
	if !r.Granularity.Valid() {
		return fmt.Errorf("core: requirement %s has invalid granularity %d", r.AppID, r.Granularity)
	}
	if r.FromHour < 0 || r.FromHour > 24 || r.ToHour < 0 || r.ToHour > 24 {
		return fmt.Errorf("core: requirement %s has hours outside [0,24]", r.AppID)
	}
	return nil
}

// ActiveAt reports whether the requirement's daily window covers t. Windows
// may wrap midnight (From 22, To 6).
func (r Requirement) ActiveAt(t time.Time) bool {
	if r.FromHour == r.ToHour {
		return true
	}
	h := t.Hour()
	if r.FromHour < r.ToHour {
		return h >= r.FromHour && h < r.ToHour
	}
	return h >= r.FromHour || h < r.ToHour
}

// Registry tracks the requirements of all connected applications. Safe for
// concurrent use.
type Registry struct {
	mu   sync.RWMutex
	reqs map[string]Requirement
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{reqs: make(map[string]Requirement)}
}

// Register installs or replaces the app's requirement.
func (g *Registry) Register(r Requirement) error {
	if err := r.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reqs[r.AppID] = r
	return nil
}

// Unregister removes the app's requirement.
func (g *Registry) Unregister(appID string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.reqs, appID)
}

// Get returns the app's requirement.
func (g *Registry) Get(appID string) (Requirement, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.reqs[appID]
	return r, ok
}

// Len returns the number of connected applications.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.reqs)
}

// All returns every requirement, ordered by app ID.
func (g *Registry) All() []Requirement {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Requirement, 0, len(g.reqs))
	for _, r := range g.reqs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AppID < out[j].AppID })
	return out
}

// Demand is the aggregate sensing requirement at an instant: the union of
// every active connected application's needs. The scheduler converts a
// Demand into interface duty cycles.
type Demand struct {
	// Finest is the finest granularity any active app requires; zero when no
	// app is active.
	Finest Granularity
	// AnyActive reports whether any requirement is active.
	AnyActive bool
	// Routes is the strongest route mode requested.
	Routes RouteAccuracy
	// Social reports whether any app wants social discovery, and
	// SocialTargets the union of targeted places (empty union with a social
	// requester that set no targets means "everywhere").
	Social           bool
	SocialEverywhere bool
	SocialTargets    map[string]bool
}

// DemandAt aggregates the requirements active at time t.
func (g *Registry) DemandAt(t time.Time) Demand {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d := Demand{SocialTargets: map[string]bool{}}
	for _, r := range g.reqs {
		if !r.ActiveAt(t) {
			continue
		}
		d.AnyActive = true
		if r.Granularity > d.Finest {
			d.Finest = r.Granularity
		}
		if r.Routes > d.Routes {
			d.Routes = r.Routes
		}
		if r.Social {
			d.Social = true
			if len(r.TargetPlaceIDs) == 0 {
				d.SocialEverywhere = true
			}
			for _, p := range r.TargetPlaceIDs {
				d.SocialTargets[p] = true
			}
		}
	}
	return d
}
