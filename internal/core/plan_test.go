package core

import (
	"strings"
	"testing"

	"repro/internal/energy"
)

func planHas(loads []energy.Load, iface energy.Interface) bool {
	for _, l := range loads {
		if l.Interface == iface {
			return true
		}
	}
	return false
}

func TestSensingPlanTiers(t *testing.T) {
	cfg := DefaultConfig("u")

	area := SensingPlan(GranularityArea, RouteNone, cfg)
	if !planHas(area, energy.GSM) {
		t.Error("area plan must include GSM")
	}
	if planHas(area, energy.WiFi) || planHas(area, energy.GPS) || planHas(area, energy.Accelerometer) {
		t.Error("area plan must be GSM-only")
	}

	bld := SensingPlan(GranularityBuilding, RouteNone, cfg)
	if !planHas(bld, energy.WiFi) || !planHas(bld, energy.Accelerometer) {
		t.Error("building plan must add accelerometer-triggered WiFi")
	}
	if planHas(bld, energy.GPS) {
		t.Error("building plan must not use GPS")
	}

	room := SensingPlan(GranularityRoom, RouteNone, cfg)
	if !planHas(room, energy.GPS) || !planHas(room, energy.WiFi) {
		t.Error("room plan must add GPS and WiFi")
	}

	routes := SensingPlan(GranularityArea, RouteHigh, cfg)
	if !planHas(routes, energy.GPS) {
		t.Error("high-accuracy routes need GPS")
	}
}

func TestPlanEnergyOrdering(t *testing.T) {
	cfg := DefaultConfig("u")
	m := energy.DefaultModel()
	area := PlanBatteryHours(m, SensingPlan(GranularityArea, RouteNone, cfg))
	bld := PlanBatteryHours(m, SensingPlan(GranularityBuilding, RouteNone, cfg))
	room := PlanBatteryHours(m, SensingPlan(GranularityRoom, RouteNone, cfg))
	if !(area > bld && bld > room) {
		t.Errorf("battery ordering violated: area=%.1f building=%.1f room=%.1f", area, bld, room)
	}
	// Area-level service should be cheap: most of a GSM-only battery life.
	gsmOnly := m.BatteryLifeHours(energy.GSM, cfg.GSMInterval)
	if area < gsmOnly*0.95 {
		t.Errorf("area plan %.1f h far below GSM-only %.1f h", area, gsmOnly)
	}
}

func TestIsolatedAppsPlanScalesLinearly(t *testing.T) {
	cfg := DefaultConfig("u")
	m := energy.DefaultModel()
	shared := PlanBatteryHours(m, SensingPlan(GranularityBuilding, RouteNone, cfg))
	iso4 := PlanBatteryHours(m, IsolatedAppsPlan(4, GranularityBuilding, RouteNone, cfg))
	if iso4 >= shared {
		t.Errorf("4 isolated stacks (%.1f h) should drain faster than one shared (%.1f h)", iso4, shared)
	}
	iso1 := PlanBatteryHours(m, IsolatedAppsPlan(1, GranularityBuilding, RouteNone, cfg))
	if iso1 != shared {
		t.Errorf("1 isolated app (%.1f) should equal the shared plan (%.1f)", iso1, shared)
	}
}

func TestFigure2ShapesAndRender(t *testing.T) {
	cfg := DefaultConfig("u")
	m := energy.DefaultModel()
	rows := Figure2(m, cfg)
	if len(rows) != len(Figure2Classes()) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tiering: every room-level class costs more than every area-level
	// class without routes.
	var worstArea, bestRoom float64
	for _, r := range rows {
		switch {
		case r.Class.Granularity == GranularityArea && r.Class.Routes == RouteNone:
			if r.BatteryHours > worstArea {
				worstArea = r.BatteryHours
			}
		case r.Class.Granularity == GranularityRoom:
			if bestRoom == 0 || r.BatteryHours < bestRoom {
				bestRoom = r.BatteryHours
			}
		}
	}
	if bestRoom >= worstArea {
		t.Errorf("room classes (%.1f h) should cost more battery than area classes (%.1f h)", bestRoom, worstArea)
	}

	var sb strings.Builder
	if err := WriteFigure2(&sb, m, cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"contextual advertisements", "activity tracking", "geo-reminders", "room", "area"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Figure 2 output missing %q", want)
		}
	}
}
