package core

import (
	"testing"

	"repro/internal/geo"
)

func TestPreferencesDefault(t *testing.T) {
	p := NewPreferences(GranularityBuilding)
	if got := p.Permitted("any"); got != GranularityBuilding {
		t.Errorf("default permitted = %v", got)
	}
	// Invalid default falls back to building.
	p2 := NewPreferences(Granularity(99))
	if got := p2.Permitted("any"); got != GranularityBuilding {
		t.Errorf("invalid default fell back to %v", got)
	}
}

func TestPerAppOverride(t *testing.T) {
	p := NewPreferences(GranularityRoom)
	p.SetAppGranularity("ads", GranularityArea)
	if got := p.Permitted("ads"); got != GranularityArea {
		t.Errorf("ads permitted = %v", got)
	}
	if got := p.Permitted("other"); got != GranularityRoom {
		t.Errorf("other permitted = %v", got)
	}
	// The paper's example: app wants building, user permits only area.
	if got := p.EffectiveGranularity("ads", GranularityBuilding); got != GranularityArea {
		t.Errorf("effective = %v, want area", got)
	}
	p.ClearAppGranularity("ads")
	if got := p.Permitted("ads"); got != GranularityRoom {
		t.Errorf("after clear = %v", got)
	}
	// Invalid grants are ignored.
	p.SetAppGranularity("ads", Granularity(0))
	if got := p.Permitted("ads"); got != GranularityRoom {
		t.Errorf("invalid set changed permission to %v", got)
	}
}

func TestKillSwitch(t *testing.T) {
	p := NewPreferences(GranularityRoom)
	if p.Disabled() {
		t.Error("fresh prefs should not be disabled")
	}
	p.SetKillSwitch(true)
	if !p.Disabled() {
		t.Error("kill switch did not engage")
	}
	p.SetKillSwitch(false)
	if p.Disabled() {
		t.Error("kill switch did not release")
	}
}

func TestDegradePlace(t *testing.T) {
	info := PlaceInfo{
		ID:             "p1",
		Label:          "Home",
		Center:         geo.LatLng{Lat: 28.613912, Lng: 77.209021},
		AccuracyMeters: 15,
		Granularity:    GranularityRoom,
		VisitCount:     12,
	}

	room := DegradePlace(info, GranularityRoom)
	if room.Center != info.Center || room.Label != "Home" {
		t.Error("room degrade should be lossless")
	}

	bld := DegradePlace(info, GranularityBuilding)
	if bld.Label != "Home" {
		t.Error("building degrade should keep label")
	}
	if bld.AccuracyMeters < GranularityBuilding.AccuracyMeters() {
		t.Errorf("building accuracy = %v", bld.AccuracyMeters)
	}

	area := DegradePlace(info, GranularityArea)
	if area.Label != "" {
		t.Error("area degrade must strip label")
	}
	if area.Granularity != GranularityArea {
		t.Errorf("area granularity = %v", area.Granularity)
	}
	if area.ID != "p1" || area.VisitCount != 12 {
		t.Error("non-sensitive fields should survive")
	}
	// Original untouched.
	if info.Label != "Home" || info.Granularity != GranularityRoom {
		t.Error("DegradePlace mutated its input")
	}
}
