package core

import (
	"math/rand"
	"slices"
	"strconv"
	"testing"

	"repro/internal/simclock"
)

func TestBusBroadcastFiltering(t *testing.T) {
	b := NewBus()
	var gotA, gotB []string
	b.Register("a", Filter{Actions: []string{ActionPlaceArrival}}, func(in Intent) {
		gotA = append(gotA, in.Action)
	})
	b.Register("b", Filter{Actions: []string{ActionPlaceArrival, ActionNewPlace}}, func(in Intent) {
		gotB = append(gotB, in.Action)
	})

	if n := b.Broadcast(Intent{Action: ActionPlaceArrival, At: simclock.Epoch}); n != 2 {
		t.Errorf("deliveries = %d, want 2", n)
	}
	if n := b.Broadcast(Intent{Action: ActionNewPlace, At: simclock.Epoch}); n != 1 {
		t.Errorf("deliveries = %d, want 1", n)
	}
	if n := b.Broadcast(Intent{Action: ActionRouteComplete, At: simclock.Epoch}); n != 0 {
		t.Errorf("deliveries = %d, want 0", n)
	}
	if len(gotA) != 1 || len(gotB) != 2 {
		t.Errorf("handler counts: a=%d b=%d", len(gotA), len(gotB))
	}
	if b.Delivered() != 3 {
		t.Errorf("Delivered = %d, want 3", b.Delivered())
	}
}

func TestBusRegistrationOrder(t *testing.T) {
	b := NewBus()
	var order []string
	mk := func(id string) {
		b.Register(id, Filter{Actions: []string{ActionNewPlace}}, func(Intent) {
			order = append(order, id)
		})
	}
	mk("third")
	mk("first")
	mk("second")
	b.Broadcast(Intent{Action: ActionNewPlace})
	if len(order) != 3 || order[0] != "third" || order[1] != "first" || order[2] != "second" {
		t.Errorf("delivery order = %v, want registration order", order)
	}
	if subs := b.Subscribers(); len(subs) != 3 || subs[0] != "third" {
		t.Errorf("Subscribers = %v", subs)
	}
}

func TestBusUnregister(t *testing.T) {
	b := NewBus()
	n := 0
	b.Register("a", Filter{Actions: []string{ActionNewPlace}}, func(Intent) { n++ })
	b.Unregister("a")
	b.Unregister("missing") // no-op
	if got := b.Broadcast(Intent{Action: ActionNewPlace}); got != 0 || n != 0 {
		t.Error("unregistered app still received intents")
	}
}

func TestBusReRegisterReplaces(t *testing.T) {
	b := NewBus()
	n1, n2 := 0, 0
	b.Register("a", Filter{Actions: []string{ActionNewPlace}}, func(Intent) { n1++ })
	b.Register("a", Filter{Actions: []string{ActionNewPlace}}, func(Intent) { n2++ })
	b.Broadcast(Intent{Action: ActionNewPlace})
	if n1 != 0 || n2 != 1 {
		t.Errorf("re-register did not replace: n1=%d n2=%d", n1, n2)
	}
}

func TestBusDeliver(t *testing.T) {
	b := NewBus()
	n := 0
	b.Register("a", Filter{Actions: []string{ActionPlaceArrival}}, func(Intent) { n++ })

	if !b.Deliver("a", Intent{Action: ActionPlaceArrival}) {
		t.Error("Deliver to matching app failed")
	}
	if b.Deliver("a", Intent{Action: ActionRouteComplete}) {
		t.Error("Deliver should respect the filter")
	}
	if b.Deliver("ghost", Intent{Action: ActionPlaceArrival}) {
		t.Error("Deliver to unknown app should fail")
	}
	if n != 1 {
		t.Errorf("handler ran %d times", n)
	}
}

func TestEmptyFilterMatchesNothing(t *testing.T) {
	b := NewBus()
	b.Register("a", Filter{}, func(Intent) { t.Error("handler fired") })
	if n := b.Broadcast(Intent{Action: ActionNewPlace}); n != 0 {
		t.Errorf("deliveries = %d", n)
	}
}

// TestBusDeliveryOrderProperty pins the Register ordering contract under a
// randomized sequence of register / re-register / unregister operations:
// Broadcast delivers in first-registration order, re-registering an app keeps
// its position, and only unregister + fresh register moves an app to the back.
// A slice model of the order is maintained alongside and compared after every
// mutation.
func TestBusDeliveryOrderProperty(t *testing.T) {
	actions := []string{ActionNewPlace}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBus()
		var model []string // first-registration order
		indexOf := func(id string) int {
			for i, m := range model {
				if m == id {
					return i
				}
			}
			return -1
		}
		for step := 0; step < 200; step++ {
			id := "app" + strconv.Itoa(rng.Intn(12))
			switch op := rng.Intn(4); {
			case op < 3: // register (or re-register, 3:1 over unregister)
				b.Register(id, Filter{Actions: actions}, func(Intent) {})
				if indexOf(id) < 0 {
					model = append(model, id)
				} // re-register: position unchanged
			default:
				b.Unregister(id)
				if i := indexOf(id); i >= 0 {
					model = append(model[:i], model[i+1:]...)
				}
			}
			if got := b.Subscribers(); !slices.Equal(got, model) {
				t.Fatalf("seed %d step %d: Subscribers = %v, want %v", seed, step, got, model)
			}
		}
		// The delivery order a Broadcast actually walks matches the model too.
		var order []string
		for _, id := range model {
			id := id
			b.Register(id, Filter{Actions: actions}, func(Intent) { order = append(order, id) })
		}
		b.Broadcast(Intent{Action: ActionNewPlace})
		if !slices.Equal(order, model) {
			t.Fatalf("seed %d: delivery order = %v, want %v", seed, order, model)
		}
	}
}
