package core

import "repro/internal/profile"

// Outbox queues uploads that failed against the cloud so no finished day
// profile is ever silently dropped on a flaky link. It replaces the old
// count-and-forget behavior of cloudSyncErrors: failed days stay queued (in
// date order) and are flushed on the next successful contact with the cloud
// — either the next nightly sync or an opportunistic flush after any
// successful call. Entries are day keys, not snapshots: profiles are rebuilt
// nightly, so the flush always uploads the freshest version of a day.
type Outbox struct {
	pending []string
	queued  map[string]bool

	enqueued int // lifetime adds
	flushed  int // lifetime successful uploads

	m *pmsMetrics // nil when used standalone (no metrics)
}

// NewOutbox returns an empty outbox.
func NewOutbox() *Outbox {
	return &Outbox{queued: map[string]bool{}}
}

// instrument mirrors the outbox's lifetime counters and queue depth into the
// pms_outbox_* metric families. The outbox's own counters stay the source of
// truth the metrics-delta tests compare against.
func (o *Outbox) instrument(m *pmsMetrics) { o.m = m }

// Add queues a day key, keeping the queue sorted and duplicate-free.
func (o *Outbox) Add(date string) {
	if o.queued[date] {
		return
	}
	o.queued[date] = true
	o.enqueued++
	if o.m != nil {
		o.m.outboxEnqueued.Inc()
		o.m.outboxDepth.Inc()
	}
	// Insert in date order (ISO dates sort lexically); the queue is tiny
	// (days of backlog), so linear insertion is fine.
	i := len(o.pending)
	for i > 0 && o.pending[i-1] > date {
		i--
	}
	o.pending = append(o.pending, "")
	copy(o.pending[i+1:], o.pending[i:])
	o.pending[i] = date
}

// Pending returns the number of queued day keys.
func (o *Outbox) Pending() int { return len(o.pending) }

// PendingDates returns the queued day keys in upload order.
func (o *Outbox) PendingDates() []string {
	out := make([]string, len(o.pending))
	copy(out, o.pending)
	return out
}

// Flushed returns how many queued uploads have completed.
func (o *Outbox) Flushed() int { return o.flushed }

// Enqueued returns how many day keys were ever queued.
func (o *Outbox) Enqueued() int { return o.enqueued }

// Flush attempts every queued upload in order via send. The first failure
// stops the pass (the link is presumed down again; remaining entries keep
// their place). Days with no current profile are dropped. It returns the
// number of uploads that succeeded and the error that stopped the pass, if
// any.
func (o *Outbox) Flush(lookup func(date string) *profile.DayProfile, send func(*profile.DayProfile) error) (int, error) {
	sent := 0
	for len(o.pending) > 0 {
		date := o.pending[0]
		p := lookup(date)
		if p == nil {
			o.drop(date)
			continue
		}
		if err := send(p); err != nil {
			return sent, err
		}
		o.drop(date)
		o.flushed++
		sent++
		if o.m != nil {
			o.m.outboxFlushed.Inc()
		}
	}
	return sent, nil
}

// drop removes the head entry (which must be date).
func (o *Outbox) drop(date string) {
	o.pending = o.pending[1:]
	delete(o.queued, date)
	if o.m != nil {
		o.m.outboxDepth.Dec()
	}
}
