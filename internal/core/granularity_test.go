package core

import (
	"testing"

	"repro/internal/geo"
)

func TestGranularityOrdering(t *testing.T) {
	if !GranularityRoom.FinerThan(GranularityBuilding) {
		t.Error("room should be finer than building")
	}
	if !GranularityBuilding.FinerThan(GranularityArea) {
		t.Error("building should be finer than area")
	}
	if GranularityArea.FinerThan(GranularityRoom) {
		t.Error("area is not finer than room")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		requested, permitted, want Granularity
	}{
		{GranularityRoom, GranularityArea, GranularityArea},
		{GranularityArea, GranularityRoom, GranularityArea},
		{GranularityBuilding, GranularityBuilding, GranularityBuilding},
		{GranularityRoom, GranularityRoom, GranularityRoom},
		{GranularityBuilding, GranularityArea, GranularityArea},
	}
	for _, tt := range tests {
		if got := Clamp(tt.requested, tt.permitted); got != tt.want {
			t.Errorf("Clamp(%v, %v) = %v, want %v", tt.requested, tt.permitted, got, tt.want)
		}
	}
}

func TestGranularityString(t *testing.T) {
	if GranularityRoom.String() != "room" || GranularityArea.String() != "area" {
		t.Error("names wrong")
	}
	if Granularity(0).Valid() {
		t.Error("zero granularity should be invalid")
	}
	if got := Granularity(42).String(); got != "Granularity(42)" {
		t.Errorf("unknown = %q", got)
	}
}

func TestDegradeCoordinates(t *testing.T) {
	p := geo.LatLng{Lat: 28.613912, Lng: 77.209021}

	// Room: exact.
	if got := DegradeCoordinates(p, GranularityRoom); got != p {
		t.Errorf("room should be exact, got %v", got)
	}

	// Building: moved at most ~ grid/√2... at most ~110 m, and snapped.
	b := DegradeCoordinates(p, GranularityBuilding)
	if d := geo.Distance(p, b); d > 150 {
		t.Errorf("building fuzz moved %v m", d)
	}
	// Snapping is idempotent.
	if again := DegradeCoordinates(b, GranularityBuilding); geo.Distance(again, b) > 1 {
		t.Error("building snap not idempotent")
	}

	// Area: coarser than building.
	a := DegradeCoordinates(p, GranularityArea)
	if geo.Distance(p, a) > 800 {
		t.Errorf("area fuzz moved too far: %v", geo.Distance(p, a))
	}
	// Points near a cell center snap to that center (non-invertibility):
	// the snapped point is its cell's center, so a 40 m nudge stays inside.
	q := geo.Offset(a, 90, 40)
	if DegradeCoordinates(q, GranularityArea) != a {
		t.Error("point 40 m from a cell center left the cell")
	}

	// Zero (unknown) coordinates pass through.
	if got := DegradeCoordinates(geo.LatLng{}, GranularityArea); !got.IsZero() {
		t.Errorf("zero point degraded to %v", got)
	}
}

func TestAccuracyMonotone(t *testing.T) {
	if !(GranularityRoom.AccuracyMeters() < GranularityBuilding.AccuracyMeters() &&
		GranularityBuilding.AccuracyMeters() < GranularityArea.AccuracyMeters()) {
		t.Error("accuracy radii must widen with coarser tiers")
	}
}
