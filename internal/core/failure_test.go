package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// flakyCloud fails every call whose sequence number matches failEvery, and
// optionally fails everything.
type flakyCloud struct {
	calls     int
	failEvery int // every Nth call errors (0 = never)
	dead      bool

	discoveries int
	syncs       int
	geos        int
}

var _ CloudAPI = (*flakyCloud)(nil)

var errFlaky = errors.New("transient cloud failure")

func (f *flakyCloud) shouldFail() bool {
	f.calls++
	if f.dead {
		return true
	}
	return f.failEvery > 0 && f.calls%f.failEvery == 0
}

func (f *flakyCloud) DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error) {
	if f.shouldFail() {
		return nil, errFlaky
	}
	f.discoveries++
	return gsm.Discover(obs, gsm.DefaultParams()).Places, nil
}

func (f *flakyCloud) SyncProfile(p *profile.DayProfile) error {
	if f.shouldFail() {
		return errFlaky
	}
	f.syncs++
	return nil
}

func (f *flakyCloud) GeolocateCell(id world.CellID) (geo.LatLng, float64, error) {
	if f.shouldFail() {
		return geo.LatLng{}, 0, errFlaky
	}
	f.geos++
	return geo.LatLng{Lat: 28.6, Lng: 77.2}, 500, nil
}

func TestServiceFallsBackWhenDiscoveryOffloadFails(t *testing.T) {
	h := newHarness(t, 120, 2)
	dead := &flakyCloud{dead: true}
	h.svc = NewService(DefaultConfig("u1"), h.clock, h.sensors, h.meter, dead)
	h.svc.Run(48 * time.Hour)

	// Discovery must have fallen back on-device.
	if len(h.svc.Places()) == 0 {
		t.Fatal("no places despite on-device fallback")
	}
	if dead.discoveries != 0 {
		t.Error("dead cloud reported successful discoveries")
	}
	// Profile sync failures are counted, not fatal.
	if h.svc.CloudSyncErrors() == 0 {
		t.Error("sync errors not recorded")
	}
	// Local profiles still exist.
	if len(h.svc.Profiles()) == 0 {
		t.Error("profiles lost when cloud is dead")
	}
}

func TestServiceToleratesIntermittentCloud(t *testing.T) {
	h := newHarness(t, 121, 3)
	flaky := &flakyCloud{failEvery: 3} // every 3rd call errors
	h.svc = NewService(DefaultConfig("u1"), h.clock, h.sensors, h.meter, flaky)
	h.svc.Run(72 * time.Hour)

	if len(h.svc.Places()) == 0 {
		t.Fatal("no places with intermittent cloud")
	}
	// Some operations went through.
	if flaky.discoveries+flaky.syncs+flaky.geos == 0 {
		t.Error("no cloud operation ever succeeded")
	}
	// Sync retries: a day that failed to sync is retried on a later nightly
	// pass, so with 3 nights and 1/3 failure probability most days sync.
	if h.svc.CloudSyncErrors() > 0 && len(h.svc.Profiles()) == 0 {
		t.Error("profiles lost on sync failure")
	}
}

func TestServiceRetriesFailedSyncNextNight(t *testing.T) {
	h := newHarness(t, 122, 3)
	// Cloud that fails all syncs on the first night, then recovers.
	gate := &gatedCloud{}
	h.svc = NewService(DefaultConfig("u1"), h.clock, h.sensors, h.meter, gate)

	gate.syncsBlocked = true
	h.svc.Run(30 * time.Hour) // through night 1 (03:00 on day 2)
	if gate.synced != 0 {
		t.Fatal("sync succeeded while blocked")
	}
	firstErrors := h.svc.CloudSyncErrors()
	if firstErrors == 0 {
		t.Fatal("no sync errors recorded while blocked")
	}

	gate.syncsBlocked = false
	h.svc.Run(42 * time.Hour) // through later nights
	if gate.synced == 0 {
		t.Error("failed day never retried after cloud recovery")
	}
}

// gatedCloud lets tests block profile syncs.
type gatedCloud struct {
	syncsBlocked bool
	synced       int
}

var _ CloudAPI = (*gatedCloud)(nil)

func (g *gatedCloud) DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error) {
	return gsm.Discover(obs, gsm.DefaultParams()).Places, nil
}

func (g *gatedCloud) SyncProfile(*profile.DayProfile) error {
	if g.syncsBlocked {
		return errFlaky
	}
	g.synced++
	return nil
}

func (g *gatedCloud) GeolocateCell(world.CellID) (geo.LatLng, float64, error) {
	return geo.LatLng{Lat: 28.6, Lng: 77.2}, 500, nil
}
