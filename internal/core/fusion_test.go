package core

import (
	"testing"
	"time"

	"repro/internal/gsm"
	"repro/internal/simclock"
	"repro/internal/wifi"
)

func gv(startMin, endMin int) gsm.Visit {
	return gsm.Visit{
		Arrive: simclock.Epoch.Add(time.Duration(startMin) * time.Minute),
		Depart: simclock.Epoch.Add(time.Duration(endMin) * time.Minute),
	}
}

func wv(startMin, endMin int) wifi.Visit {
	return wifi.Visit{
		Arrive: simclock.Epoch.Add(time.Duration(startMin) * time.Minute),
		Depart: simclock.Epoch.Add(time.Duration(endMin) * time.Minute),
	}
}

func TestFuseSplitsMergedGSMPlace(t *testing.T) {
	// One GSM place (library + academic building sharing towers), but WiFi
	// saw two different signatures on repeated visits: fusion must split it.
	gp := &gsm.Place{ID: 0, Visits: []gsm.Visit{gv(0, 60), gv(100, 160), gv(200, 260), gv(300, 360)}}
	wifiPlaces := []*wifi.Place{
		{ID: 0, Visits: []wifi.Visit{wv(0, 60), wv(200, 260)}},    // library
		{ID: 1, Visits: []wifi.Visit{wv(100, 160), wv(300, 360)}}, // academic
	}
	fused := FuseGSMWiFi([]*gsm.Place{gp}, wifiPlaces)
	if len(fused) != 2 {
		t.Fatalf("fused places = %d, want 2", len(fused))
	}
	byWiFi := map[int]*UnifiedPlace{}
	for _, p := range fused {
		byWiFi[p.WiFiPlaceID] = p
	}
	if len(byWiFi[0].Visits) != 2 || len(byWiFi[1].Visits) != 2 {
		t.Errorf("visit partition wrong: %d/%d", len(byWiFi[0].Visits), len(byWiFi[1].Visits))
	}
	for _, p := range fused {
		if p.GSMPlaceID != 0 {
			t.Error("fused places must remember their GSM parent")
		}
	}
}

func TestFuseKeepsUnsplitPlace(t *testing.T) {
	gp := &gsm.Place{ID: 3, Visits: []gsm.Visit{gv(0, 60), gv(100, 160)}}
	wifiPlaces := []*wifi.Place{{ID: 7, Visits: []wifi.Visit{wv(0, 60), wv(100, 160)}}}
	fused := FuseGSMWiFi([]*gsm.Place{gp}, wifiPlaces)
	if len(fused) != 1 {
		t.Fatalf("fused = %d, want 1", len(fused))
	}
	if fused[0].WiFiPlaceID != 7 || fused[0].GSMPlaceID != 3 {
		t.Errorf("links wrong: %+v", fused[0])
	}
	if fused[0].TotalDwell() != 2*time.Hour {
		t.Errorf("dwell = %v", fused[0].TotalDwell())
	}
}

func TestFuseNoWiFiEvidence(t *testing.T) {
	gp := &gsm.Place{ID: 0, Visits: []gsm.Visit{gv(0, 60)}}
	fused := FuseGSMWiFi([]*gsm.Place{gp}, nil)
	if len(fused) != 1 {
		t.Fatalf("fused = %d", len(fused))
	}
	if fused[0].WiFiPlaceID != -1 {
		t.Errorf("WiFiPlaceID = %d, want -1", fused[0].WiFiPlaceID)
	}
}

func TestFuseOrphanVisitsJoinDominantGroup(t *testing.T) {
	// Three visits: two matched to WiFi place 0, one unmatched (WiFi off
	// that day). The orphan joins the dominant group rather than becoming a
	// separate place.
	gp := &gsm.Place{ID: 0, Visits: []gsm.Visit{gv(0, 60), gv(100, 160), gv(200, 260)}}
	wifiPlaces := []*wifi.Place{
		{ID: 0, Visits: []wifi.Visit{wv(0, 60), wv(100, 160)}},
	}
	fused := FuseGSMWiFi([]*gsm.Place{gp}, wifiPlaces)
	if len(fused) != 1 {
		t.Fatalf("fused = %d, want 1 (orphan must not split)", len(fused))
	}
	if len(fused[0].Visits) != 3 {
		t.Errorf("visits = %d, want 3", len(fused[0].Visits))
	}
}

func TestFuseSingleVisitGroupAbsorbed(t *testing.T) {
	// A WiFi group seen on only one visit is signature drift, not a second
	// venue: it must not split the GSM place.
	gp := &gsm.Place{ID: 0, Visits: []gsm.Visit{gv(0, 60), gv(100, 160), gv(200, 260)}}
	wifiPlaces := []*wifi.Place{
		{ID: 0, Visits: []wifi.Visit{wv(0, 60), wv(200, 260)}},
		{ID: 1, Visits: []wifi.Visit{wv(100, 160)}}, // one-off signature
	}
	fused := FuseGSMWiFi([]*gsm.Place{gp}, wifiPlaces)
	if len(fused) != 1 {
		t.Fatalf("fused = %d, want 1 (uncorroborated split)", len(fused))
	}
	if len(fused[0].Visits) != 3 {
		t.Errorf("visits = %d, want 3", len(fused[0].Visits))
	}
}

func TestFuseShortOverlapIgnored(t *testing.T) {
	// WiFi visit overlapping only 2 minutes: below fuseMinOverlap, so no
	// attribution.
	gp := &gsm.Place{ID: 0, Visits: []gsm.Visit{gv(0, 60)}}
	wifiPlaces := []*wifi.Place{{ID: 0, Visits: []wifi.Visit{wv(58, 90)}}}
	fused := FuseGSMWiFi([]*gsm.Place{gp}, wifiPlaces)
	if fused[0].WiFiPlaceID != -1 {
		t.Errorf("2-minute overlap attributed: WiFiPlaceID = %d", fused[0].WiFiPlaceID)
	}
}

func TestFuseIDsStableAndOrdered(t *testing.T) {
	g1 := &gsm.Place{ID: 0, Visits: []gsm.Visit{gv(500, 560)}}
	g2 := &gsm.Place{ID: 1, Visits: []gsm.Visit{gv(0, 60)}}
	fused := FuseGSMWiFi([]*gsm.Place{g1, g2}, nil)
	if fused[0].ID != "p0" || fused[1].ID != "p1" {
		t.Errorf("IDs = %s, %s", fused[0].ID, fused[1].ID)
	}
	if !fused[0].Visits[0].Arrive.Before(fused[1].Visits[0].Arrive) {
		t.Error("places not ordered by first visit")
	}
}

func TestUnifyGSM(t *testing.T) {
	gp := &gsm.Place{ID: 4, Visits: []gsm.Visit{gv(0, 30)}}
	out := UnifyGSM([]*gsm.Place{gp})
	if len(out) != 1 || out[0].GSMPlaceID != 4 || out[0].WiFiPlaceID != -1 {
		t.Errorf("UnifyGSM = %+v", out)
	}
	if out[0].Visits[0].Duration() != 30*time.Minute {
		t.Error("visit lost")
	}
}

func TestUnifyWiFi(t *testing.T) {
	wp := &wifi.Place{ID: 2, Visits: []wifi.Visit{wv(0, 45)}}
	out := UnifyWiFi([]*wifi.Place{wp})
	if len(out) != 1 || out[0].WiFiPlaceID != 2 || out[0].GSMPlaceID != -1 {
		t.Errorf("UnifyWiFi = %+v", out)
	}
}
