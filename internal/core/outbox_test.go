package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/profile"
)

func TestOutboxOrderAndDedup(t *testing.T) {
	o := NewOutbox()
	o.Add("2014-09-03")
	o.Add("2014-09-01")
	o.Add("2014-09-02")
	o.Add("2014-09-01") // duplicate
	if got := o.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	dates := o.PendingDates()
	want := []string{"2014-09-01", "2014-09-02", "2014-09-03"}
	for i, d := range want {
		if dates[i] != d {
			t.Fatalf("pending order = %v, want %v", dates, want)
		}
	}
	if o.Enqueued() != 3 {
		t.Errorf("enqueued = %d, want 3 (duplicates not re-counted)", o.Enqueued())
	}
}

func TestOutboxFlushStopsAtFirstFailure(t *testing.T) {
	o := NewOutbox()
	for _, d := range []string{"2014-09-01", "2014-09-02", "2014-09-03"} {
		o.Add(d)
	}
	lookup := func(date string) *profile.DayProfile {
		return &profile.DayProfile{UserID: "u1", Date: date}
	}
	failOn := "2014-09-02"
	var sent []string
	send := func(p *profile.DayProfile) error {
		if p.Date == failOn {
			return errors.New("link down")
		}
		sent = append(sent, p.Date)
		return nil
	}

	n, err := o.Flush(lookup, send)
	if err == nil {
		t.Fatal("expected the injected failure to surface")
	}
	if n != 1 || len(sent) != 1 || sent[0] != "2014-09-01" {
		t.Fatalf("first pass sent %v (n=%d), want just 2014-09-01", sent, n)
	}
	// The failed day and everything after it keep their place.
	if got := o.PendingDates(); len(got) != 2 || got[0] != "2014-09-02" {
		t.Fatalf("pending after failure = %v, want [2014-09-02 2014-09-03]", got)
	}

	// Link recovers: the rest drains in order.
	failOn = ""
	n, err = o.Flush(lookup, send)
	if err != nil || n != 2 {
		t.Fatalf("second pass: n=%d err=%v, want 2 sends", n, err)
	}
	if o.Pending() != 0 {
		t.Errorf("pending = %d after full drain, want 0", o.Pending())
	}
	if o.Flushed() != 3 {
		t.Errorf("flushed = %d, want 3", o.Flushed())
	}
}

func TestOutboxDropsVanishedDays(t *testing.T) {
	o := NewOutbox()
	o.Add("2014-09-01")
	o.Add("2014-09-02")
	lookup := func(date string) *profile.DayProfile {
		if date == "2014-09-01" {
			return nil // day no longer exists in the rebuilt builder
		}
		return &profile.DayProfile{UserID: "u1", Date: date}
	}
	var sent int
	n, err := o.Flush(lookup, func(*profile.DayProfile) error { sent++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || sent != 1 || o.Pending() != 0 {
		t.Fatalf("n=%d sent=%d pending=%d, want 1/1/0", n, sent, o.Pending())
	}
}

// TestServiceOutboxQueuesWhileBlocked: profile uploads that fail during a
// nightly sync land in the outbox instead of being forgotten, and an
// explicit FlushOutbox drains them once the cloud recovers.
func TestServiceOutboxQueuesWhileBlocked(t *testing.T) {
	h := newHarness(t, 130, 3)
	gate := &gatedCloud{}
	h.svc = NewService(DefaultConfig("u1"), h.clock, h.sensors, h.meter, gate)

	gate.syncsBlocked = true
	h.svc.Run(30 * time.Hour) // through night 1 (03:00 on day 2)
	if gate.synced != 0 {
		t.Fatal("sync succeeded while blocked")
	}
	if h.svc.Outbox().Pending() == 0 {
		t.Fatal("failed uploads were not queued in the outbox")
	}
	if h.svc.CloudSyncErrors() == 0 {
		t.Fatal("sync errors not recorded while blocked")
	}

	gate.syncsBlocked = false
	flushed := h.svc.FlushOutbox()
	if flushed == 0 {
		t.Fatal("FlushOutbox sent nothing after the cloud recovered")
	}
	if h.svc.Outbox().Pending() != 0 {
		t.Errorf("outbox still holds %d days after recovery", h.svc.Outbox().Pending())
	}
	if gate.synced != flushed {
		t.Errorf("cloud received %d uploads, flush reported %d", gate.synced, flushed)
	}
}
