package core

import (
	"fmt"
	"io"

	"repro/internal/energy"
)

// AppClass is one row of the paper's Figure 2: a category of place-aware
// application with the place granularity it requires.
type AppClass struct {
	Name        string
	Example     string
	Granularity Granularity
	Routes      RouteAccuracy
}

// Figure2Classes returns the application characterization of Figure 2:
// which application categories need room-, building-, or area-level place
// accuracy, and which also consume routes.
func Figure2Classes() []AppClass {
	return []AppClass{
		{Name: "activity tracking", Example: "Moves", Granularity: GranularityRoom, Routes: RouteHigh},
		{Name: "indoor navigation", Example: "mall wayfinding", Granularity: GranularityRoom},
		{Name: "geo-reminders", Example: "Place-Its, to-do alerts", Granularity: GranularityBuilding},
		{Name: "check-ins / meetups", Example: "Foursquare, Facebook Places", Granularity: GranularityBuilding},
		{Name: "content sharing", Example: "DTN share-on-meet", Granularity: GranularityBuilding},
		{Name: "life logging", Example: "PlaceMap", Granularity: GranularityBuilding, Routes: RouteLow},
		{Name: "contextual advertisements", Example: "PlaceADs, Groupon", Granularity: GranularityArea},
		{Name: "participatory sensing", Example: "PEIR pollution exposure", Granularity: GranularityArea, Routes: RouteLow},
		{Name: "traffic estimation", Example: "ride sharing", Granularity: GranularityArea, Routes: RouteHigh},
	}
}

// Figure2Row is one computed row: the class, the sensing plan PMWare runs
// for it, and the projected battery cost.
type Figure2Row struct {
	Class        AppClass
	Loads        []energy.Load
	AvgPowerMW   float64
	BatteryHours float64
}

// Figure2 computes the characterization matrix: for every application class,
// the sensing plan PMWare would run to serve it alone and the projected
// battery duration. The shape to reproduce is the tiering: area-level
// classes cost barely more than idle GSM tracking, building-level classes
// add triggered WiFi, and room-level classes pay for GPS.
func Figure2(m energy.Model, cfg Config) []Figure2Row {
	classes := Figure2Classes()
	rows := make([]Figure2Row, 0, len(classes))
	for _, c := range classes {
		loads := SensingPlan(c.Granularity, c.Routes, cfg)
		hours := PlanBatteryHours(m, loads)
		var power float64
		if hours > 0 {
			power = m.BatteryJoules() / (hours * 3600) * 1000
		}
		rows = append(rows, Figure2Row{Class: c, Loads: loads, AvgPowerMW: power, BatteryHours: hours})
	}
	return rows
}

// WriteFigure2 renders the characterization as an aligned text table.
func WriteFigure2(w io.Writer, m energy.Model, cfg Config) error {
	if _, err := fmt.Fprintf(w, "%-26s %-10s %-7s %14s %16s\n",
		"Application class", "Place", "Routes", "AvgPower (mW)", "Battery (hours)"); err != nil {
		return err
	}
	for _, r := range Figure2(m, cfg) {
		if _, err := fmt.Fprintf(w, "%-26s %-10s %-7s %14.2f %16.1f\n",
			r.Class.Name, r.Class.Granularity, r.Class.Routes, r.AvgPowerMW, r.BatteryHours); err != nil {
			return err
		}
	}
	return nil
}
