package core

import (
	"time"

	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/wifi"
)

// nightlyDiscovery is the once-a-day heavy pass (paper Section 2.3.1: GCA
// "is computationally heavy and mobile service offloads this computation to
// the cloud instance"; "this is one time computation and after discovery of
// place signatures, mobile service can track user's visit in those places").
//
// It (re-)runs GCA over the accumulated GSM trace (via the cloud when
// connected), fuses the result with the online WiFi places, refreshes the
// unified place store and the live tracker, extracts routes, rebuilds day
// profiles, and syncs finished days to the cloud.
func (s *Service) nightlyDiscovery() {
	if len(s.gsmObs) == 0 {
		return
	}
	s.discoveriesRun++
	s.m.discoveries.Inc()

	// 1. Place discovery: offload GCA when a cloud is connected, falling
	// back to on-device computation on error.
	var gsmPlaces []*gsm.Place
	if s.cloud != nil {
		if places, err := s.cloud.DiscoverPlaces(s.gsmObs); err == nil {
			gsmPlaces = places
			// The link is demonstrably up: drain any uploads a previous
			// (failed) sync left in the outbox before profiles are rebuilt.
			s.flushOutbox()
		}
	}
	if gsmPlaces == nil {
		gsmPlaces = s.localDiscover().Places
	}
	s.gsmPlaces = gsmPlaces

	// 2. Rediscovery invalidates place identities: if the user is currently
	// "at" a place, close that visit for connected apps before the store is
	// replaced, so their arrival/departure state machines stay paired. The
	// tracker re-emits an arrival under the new identity within minutes.
	if s.currentPlace != "" {
		if prev := s.placeByID(s.currentPlace); prev != nil {
			s.broadcastPlace(ActionPlaceDeparture, s.placeInfo(prev))
		}
		s.currentPlace = ""
	}

	// 3. Fuse with opportunistic WiFi evidence. Consolidate the online
	// detector's places first: signature drift can split one venue across
	// duplicate WiFi records, which would wrongly divide GSM places.
	wifiPlaces := wifi.Consolidate(s.wifiDetector.Places(), s.cfg.WiFiParams.MatchSim)
	fused := FuseGSMWiFi(gsmPlaces, wifiPlaces)
	sortPlacesByFirstVisit(fused)

	// 3. Carry user labels and detect new places: a fused place inherits the
	// label of an old place whose visits it covers.
	newPlaces := s.adoptPlaces(fused)

	// 4. Geolocate place centers through the cloud geo service.
	s.geolocatePlaces()

	// 5. Refresh the live tracker with the new signatures.
	s.tracker = gsm.NewTracker(gsmPlaces)
	s.currentGSM = -1

	// 6. Routes: low-accuracy extraction from the GSM trace between fused
	// visits. (High-accuracy routes accumulate live.)
	s.routesGSM = route.ExtractGSM(s.gsmObs, s.visitIntervals(), s.cfg.RouteParams)

	// 7. Rebuild day profiles from the authoritative fused visits.
	s.rebuildProfiles()

	// 8. Announce new places.
	for _, up := range newPlaces {
		s.broadcastPlace(ActionNewPlace, s.placeInfo(up))
	}

	// 9. Sync finished days.
	s.syncProfiles()
}

// localDiscover runs GCA on-device over the accumulated trace — the
// fallback when no cloud is connected or the offload failed. It extends the
// cached incremental pipeline with only the observations accumulated since
// the last pass (output-identical to batch gsm.Discover), rebuilding from
// scratch if the pipeline somehow got ahead of the trace.
func (s *Service) localDiscover() *gsm.Result {
	if s.gsmPipe == nil || s.gsmPipe.Len() > len(s.gsmObs) {
		s.gsmPipe = gsm.NewPipeline(s.cfg.GSMParams)
	}
	s.gsmPipe.Extend(s.gsmObs[s.gsmPipe.Len():])
	return s.gsmPipe.Result()
}

// adoptPlaces installs the fused places as the unified store, carrying over
// labels from the previous generation by visit containment, and returns the
// places that are genuinely new (no visit overlap with any previous place).
func (s *Service) adoptPlaces(fused []*UnifiedPlace) []*UnifiedPlace {
	old := s.places
	var newPlaces []*UnifiedPlace
	for _, np := range fused {
		match := bestOverlappingPlace(np, old)
		if match == nil {
			newPlaces = append(newPlaces, np)
			continue
		}
		if match.Label != "" && np.Label == "" {
			np.Label = match.Label
		}
	}
	s.places = fused
	// Rebuild the label index keyed by the new IDs.
	s.labels = map[string]string{}
	for _, p := range s.places {
		if p.Label != "" {
			s.labels[p.ID] = p.Label
		}
	}
	// currentPlace may refer to a stale ID; remap it by overlap.
	if s.currentPlace != "" {
		s.currentPlace = ""
	}
	return newPlaces
}

// bestOverlappingPlace returns the old place sharing the most visit time
// with np, or nil when none overlaps meaningfully.
func bestOverlappingPlace(np *UnifiedPlace, old []*UnifiedPlace) *UnifiedPlace {
	var best *UnifiedPlace
	var bestOv time.Duration
	for _, op := range old {
		var ov time.Duration
		for _, nv := range np.Visits {
			for _, ovst := range op.Visits {
				ov += overlapDuration(nv.Arrive, nv.Depart, ovst.Arrive, ovst.Depart)
			}
		}
		if ov > bestOv {
			bestOv, best = ov, op
		}
	}
	if bestOv < fuseMinOverlap {
		return nil
	}
	return best
}

// geolocatePlaces estimates each place's coordinates by averaging the
// geolocated positions of its GSM signature cells (the cloud's geo-location
// API converts Cell IDs into approximate coordinates, Section 2.3.3).
func (s *Service) geolocatePlaces() {
	if s.cloud == nil {
		return
	}
	byID := map[int]*gsm.Place{}
	for _, gp := range s.gsmPlaces {
		byID[gp.ID] = gp
	}
	for _, up := range s.places {
		gp, ok := byID[up.GSMPlaceID]
		if !ok {
			continue
		}
		var pts []geo.LatLng
		for _, c := range gp.Signature {
			if pos, _, err := s.cloud.GeolocateCell(c); err == nil && !pos.IsZero() {
				pts = append(pts, pos)
			}
		}
		if len(pts) > 0 {
			up.Center = geo.Centroid(pts)
		}
	}
}

// visitIntervals returns every fused visit as a sorted interval list for
// route extraction.
func (s *Service) visitIntervals() []route.Interval {
	var out []route.Interval
	for _, p := range s.places {
		for _, v := range p.Visits {
			out = append(out, route.Interval{Start: v.Arrive, End: v.Depart})
		}
	}
	sortIntervals(out)
	return out
}

func sortIntervals(iv []route.Interval) {
	for i := 1; i < len(iv); i++ {
		for j := i; j > 0 && iv[j].Start.Before(iv[j-1].Start); j-- {
			iv[j], iv[j-1] = iv[j-1], iv[j]
		}
	}
}

// rebuildProfiles regenerates the day-profile builder from the fused places,
// discovered routes, and accumulated encounters.
func (s *Service) rebuildProfiles() {
	b := profile.NewBuilder(s.cfg.UserID)
	for _, p := range s.places {
		for _, v := range p.Visits {
			b.AddVisit(p.ID, p.Label, v.Arrive, v.Depart)
		}
	}
	for _, r := range s.routesGSM {
		for _, t := range r.Trips {
			b.AddRoute(routeID("gsm", r.ID), t.Start, t.End)
		}
	}
	for _, r := range s.routesGPS {
		for _, t := range r.Trips {
			b.AddRoute(routeID("gps", r.ID), t.Start, t.End)
		}
	}
	for _, e := range s.encounters {
		b.AddEncounter(e.PeerID, e.PlaceID, e.Start, e.End)
	}
	for _, a := range s.activityLog {
		b.AddActivity(a.At, a.Moving)
	}
	s.profiles = b
}

// syncProfiles queues every complete (i.e. before today) unsynced day
// profile in the outbox and drains it. A day that fails to upload stays
// queued — nothing is lost to a flaky link; it goes out on the next
// successful flush (opportunistic or next nightly).
func (s *Service) syncProfiles() {
	if s.cloud == nil {
		return
	}
	today := s.clock.Now().Format(profile.DateFormat)
	for _, d := range s.profiles.Days() {
		if d.Date >= today || s.synced[d.Date] {
			continue
		}
		s.outbox.Add(d.Date)
	}
	s.flushOutbox()
}

// flushOutbox drains the queued profile uploads in date order, stopping at
// the first failure (the link is presumed down; the rest keep their place).
func (s *Service) flushOutbox() {
	if s.cloud == nil || s.outbox.Pending() == 0 {
		return
	}
	byDate := map[string]*profile.DayProfile{}
	for _, d := range s.profiles.Days() {
		byDate[d.Date] = d
	}
	_, err := s.outbox.Flush(
		func(date string) *profile.DayProfile { return byDate[date] },
		func(p *profile.DayProfile) error {
			if err := s.cloud.SyncProfile(p); err != nil {
				return err
			}
			s.synced[p.Date] = true
			return nil
		},
	)
	if err != nil {
		s.cloudSyncErrors++
		s.m.syncErrors.Inc()
	}
}

// FlushOutbox retries queued profile uploads immediately (connected apps can
// call this when they observe connectivity return). It reports how many
// uploads went through.
func (s *Service) FlushOutbox() int {
	before := s.outbox.Flushed()
	s.flushOutbox()
	return s.outbox.Flushed() - before
}

// Outbox exposes the pending-upload queue (read-mostly; owned by the
// service's single-threaded loop).
func (s *Service) Outbox() *Outbox { return s.outbox }

// CloudSyncErrors reports how many sync passes hit an upload failure.
func (s *Service) CloudSyncErrors() int { return s.cloudSyncErrors }
