package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

// harness bundles a runnable mobile service over a simulated participant.
type harness struct {
	w       *world.World
	agent   *mobility.Agent
	it      *mobility.Itinerary
	clock   *simclock.Clock
	sensors *trace.Sensors
	meter   *energy.Meter
	svc     *Service
}

func newHarness(t *testing.T, seed int64, days int) *harness {
	t.Helper()
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(seed))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, days, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("BuildItinerary: %v", err)
	}
	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(seed+2)))
	meter := energy.NewMeter(energy.DefaultModel())
	svc := NewService(DefaultConfig("u1"), clock, sensors, meter, nil)
	return &harness{w: w, agent: agent, it: it, clock: clock, sensors: sensors, meter: meter, svc: svc}
}

func TestServiceBaseGSMSensing(t *testing.T) {
	h := newHarness(t, 101, 1)
	h.svc.Run(24 * time.Hour)
	// GSM sampled ~ once per minute all day, regardless of connected apps.
	if got := h.meter.Samples(energy.GSM); got < 1400 || got > 1500 {
		t.Errorf("GSM samples = %d, want ~1440", got)
	}
	// No apps connected: no triggered sensing at all.
	if got := h.meter.Samples(energy.WiFi); got != 0 {
		t.Errorf("WiFi samples with no apps = %d, want 0", got)
	}
	if got := h.meter.Samples(energy.GPS); got != 0 {
		t.Errorf("GPS samples with no apps = %d, want 0", got)
	}
	if got := h.meter.Samples(energy.Accelerometer); got != 0 {
		t.Errorf("accelerometer samples with no apps = %d, want 0", got)
	}
}

func TestServiceDiscoversPlaces(t *testing.T) {
	h := newHarness(t, 102, 3)
	h.svc.Run(72 * time.Hour)
	if h.svc.DiscoveriesRun() < 3 {
		t.Errorf("discoveries = %d, want >= 3 (nightly)", h.svc.DiscoveriesRun())
	}
	places := h.svc.Places()
	if len(places) < 2 {
		t.Fatalf("places = %d, want >= 2 (home, work)", len(places))
	}
	// Home dominates dwell.
	var top *UnifiedPlace
	for _, p := range places {
		if top == nil || p.TotalDwell() > top.TotalDwell() {
			top = p
		}
	}
	if top.TotalDwell() < 20*time.Hour {
		t.Errorf("top place dwell %v too small over 3 days", top.TotalDwell())
	}
}

func TestServiceBuildingAppGetsEvents(t *testing.T) {
	h := newHarness(t, 103, 3)
	var arrivals, departures []Intent
	err := h.svc.Connect(
		Requirement{AppID: "todo", Granularity: GranularityBuilding},
		Filter{Actions: []string{ActionPlaceArrival, ActionPlaceDeparture, ActionNewPlace}},
		func(in Intent) {
			switch in.Action {
			case ActionPlaceArrival:
				arrivals = append(arrivals, in)
			case ActionPlaceDeparture:
				departures = append(departures, in)
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.svc.Run(72 * time.Hour)

	if len(arrivals) == 0 || len(departures) == 0 {
		t.Fatalf("arrivals=%d departures=%d; building app got no events", len(arrivals), len(departures))
	}
	for _, in := range arrivals {
		if in.Place == nil {
			t.Fatal("arrival without place payload")
		}
		if in.Place.Granularity != GranularityBuilding {
			t.Errorf("payload granularity = %v, want building", in.Place.Granularity)
		}
	}
	// Triggered sensing: WiFi sampled, but far less than GSM.
	wifiN, gsmN := h.meter.Samples(energy.WiFi), h.meter.Samples(energy.GSM)
	if wifiN == 0 {
		t.Error("building-level app should trigger WiFi scans")
	}
	if wifiN*3 > gsmN {
		t.Errorf("WiFi samples %d not much rarer than GSM %d", wifiN, gsmN)
	}
	// No GPS without room/route-high demand.
	if h.meter.Samples(energy.GPS) != 0 {
		t.Error("GPS sampled without room-level or high-route demand")
	}
}

func TestServiceAreaAppNoTriggeredSensing(t *testing.T) {
	h := newHarness(t, 104, 2)
	events := 0
	h.svc.Connect(
		Requirement{AppID: "ads", Granularity: GranularityArea},
		Filter{Actions: []string{ActionPlaceArrival, ActionNewPlace}},
		func(in Intent) {
			events++
			if in.Place.Label != "" {
				t.Error("area payload leaked a label")
			}
			if in.Place.AccuracyMeters < GranularityArea.AccuracyMeters() {
				t.Errorf("area payload accuracy %v too precise", in.Place.AccuracyMeters)
			}
		},
	)
	h.svc.Run(48 * time.Hour)
	if h.meter.Samples(energy.WiFi) != 0 || h.meter.Samples(energy.Accelerometer) != 0 {
		t.Error("area-level demand must not trigger WiFi/accelerometer")
	}
	if events == 0 {
		t.Error("area app received no events (GSM tracker should supply them)")
	}
}

func TestServicePrivacyClamp(t *testing.T) {
	h := newHarness(t, 105, 2)
	var got []PlaceInfo
	h.svc.Connect(
		Requirement{AppID: "nosy", Granularity: GranularityRoom},
		Filter{Actions: []string{ActionPlaceArrival, ActionNewPlace}},
		func(in Intent) { got = append(got, *in.Place) },
	)
	// User caps the nosy app at area level.
	h.svc.Prefs.SetAppGranularity("nosy", GranularityArea)
	h.svc.Run(48 * time.Hour)
	if len(got) == 0 {
		t.Fatal("no events")
	}
	for _, p := range got {
		if p.Granularity != GranularityArea {
			t.Fatalf("clamp failed: payload at %v", p.Granularity)
		}
	}
}

func TestServiceKillSwitch(t *testing.T) {
	h := newHarness(t, 106, 2)
	events := 0
	h.svc.Connect(
		Requirement{AppID: "app", Granularity: GranularityBuilding},
		Filter{Actions: []string{ActionPlaceArrival, ActionPlaceDeparture, ActionNewPlace}},
		func(Intent) { events++ },
	)
	h.svc.Prefs.SetKillSwitch(true)
	h.svc.Run(48 * time.Hour)
	if events != 0 {
		t.Errorf("kill switch leaked %d events", events)
	}
	if h.meter.Samples(energy.WiFi) != 0 {
		t.Error("kill switch should stop triggered sensing too")
	}
	// Base GSM keeps running (PMWare still collects for later).
	if h.meter.Samples(energy.GSM) == 0 {
		t.Error("base GSM sensing stopped")
	}
}

func TestServiceHighAccuracyRoutes(t *testing.T) {
	h := newHarness(t, 107, 3)
	var routes []Intent
	h.svc.Connect(
		Requirement{AppID: "tracker", Granularity: GranularityBuilding, Routes: RouteHigh},
		Filter{Actions: []string{ActionRouteComplete}},
		func(in Intent) { routes = append(routes, in) },
	)
	h.svc.Run(72 * time.Hour)

	if h.meter.Samples(energy.GPS) == 0 {
		t.Fatal("high-accuracy routes demand GPS, none sampled")
	}
	if len(h.svc.GPSRoutes()) == 0 {
		t.Fatal("no GPS routes recorded")
	}
	if len(routes) == 0 {
		t.Fatal("no RouteComplete intents")
	}
	for _, in := range routes {
		if in.Route == nil || !in.Route.HighAccuracy {
			t.Error("route payload missing or low accuracy")
		}
		if in.Route.LengthMeters <= 0 {
			t.Error("route with non-positive length")
		}
	}
	// Recurring commute should fold into few routes with multiple trips.
	totalTrips := 0
	for _, r := range h.svc.GPSRoutes() {
		totalTrips += r.Frequency()
	}
	if totalTrips < len(h.svc.GPSRoutes()) {
		t.Error("trips fewer than routes?")
	}
}

func TestServiceProfilesBuilt(t *testing.T) {
	h := newHarness(t, 108, 3)
	h.svc.Connect(
		Requirement{AppID: "log", Granularity: GranularityBuilding, Routes: RouteLow},
		Filter{Actions: []string{ActionNewPlace}},
		func(Intent) {},
	)
	h.svc.Run(72 * time.Hour)
	profiles := h.svc.Profiles()
	if len(profiles) < 2 {
		t.Fatalf("profiles = %d days, want >= 2", len(profiles))
	}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("day %s invalid: %v", p.Date, err)
		}
	}
	// Most days should be dominated by dwell time (home + work).
	if profiles[0].TotalDwell() < 12*time.Hour {
		t.Errorf("day 0 dwell = %v, want most of the day", profiles[0].TotalDwell())
	}
	if len(h.svc.GSMRoutes()) == 0 {
		t.Error("no low-accuracy routes extracted")
	}
}

func TestServiceLabelPlace(t *testing.T) {
	h := newHarness(t, 109, 2)
	var labeled []Intent
	h.svc.Connect(
		Requirement{AppID: "ui", Granularity: GranularityRoom},
		Filter{Actions: []string{ActionPlaceLabeled}},
		func(in Intent) { labeled = append(labeled, in) },
	)
	h.svc.Run(48 * time.Hour)
	places := h.svc.Places()
	if len(places) == 0 {
		t.Fatal("no places to label")
	}
	if err := h.svc.LabelPlace(places[0].ID, "Home"); err != nil {
		t.Fatal(err)
	}
	if h.svc.Label(places[0].ID) != "Home" {
		t.Error("label not stored")
	}
	if len(labeled) != 1 || labeled[0].Place.Label != "Home" {
		t.Errorf("label broadcast wrong: %+v", labeled)
	}
	if err := h.svc.LabelPlace("ghost", "X"); err == nil {
		t.Error("labeling unknown place should fail")
	}
}

func TestServiceSharedSensingAcrossApps(t *testing.T) {
	// Core claim: N apps on one PMS cost the same sensing as one app.
	run := func(nApps int) int {
		h := newHarness(t, 110, 2)
		for i := 0; i < nApps; i++ {
			h.svc.Connect(
				Requirement{AppID: "app" + string(rune('a'+i)), Granularity: GranularityBuilding},
				Filter{Actions: []string{ActionPlaceArrival}},
				func(Intent) {},
			)
		}
		h.svc.Run(48 * time.Hour)
		return h.meter.TotalSamples()
	}
	one, four := run(1), run(4)
	// Identical seeds, identical demand: sampling is identical.
	if one != four {
		t.Errorf("sensing grew with app count: 1 app = %d samples, 4 apps = %d", one, four)
	}
}

func TestServiceTimeWindowedRequirement(t *testing.T) {
	h := newHarness(t, 111, 2)
	h.svc.Connect(
		Requirement{AppID: "work-hours", Granularity: GranularityBuilding, FromHour: 9, ToHour: 18},
		Filter{Actions: []string{ActionPlaceArrival}},
		func(Intent) {},
	)
	h.svc.Run(48 * time.Hour)
	wifiAll := h.meter.Samples(energy.WiFi)
	if wifiAll == 0 {
		t.Skip("no WiFi triggers fired in window (seed-dependent)")
	}
	// Re-run with an all-day requirement: must sample at least as much.
	h2 := newHarness(t, 111, 2)
	h2.svc.Connect(
		Requirement{AppID: "all-day", Granularity: GranularityBuilding},
		Filter{Actions: []string{ActionPlaceArrival}},
		func(Intent) {},
	)
	h2.svc.Run(48 * time.Hour)
	if h2.meter.Samples(energy.WiFi) < wifiAll {
		t.Errorf("all-day app sampled less WiFi (%d) than windowed app (%d)",
			h2.meter.Samples(energy.WiFi), wifiAll)
	}
}

func TestServiceRoomLevelUsesGPS(t *testing.T) {
	h := newHarness(t, 112, 1)
	h.svc.Connect(
		Requirement{AppID: "fit", Granularity: GranularityRoom},
		Filter{Actions: []string{ActionPlaceArrival}},
		func(Intent) {},
	)
	h.svc.Run(24 * time.Hour)
	if h.meter.Samples(energy.GPS) == 0 {
		t.Error("room-level demand should duty-cycle GPS")
	}
	if h.meter.Samples(energy.WiFi) == 0 {
		t.Error("room-level demand should scan WiFi")
	}
}

func TestServiceActivityInProfiles(t *testing.T) {
	h := newHarness(t, 113, 2)
	// Building-level demand keeps the accelerometer running.
	h.svc.Connect(
		Requirement{AppID: "fit", Granularity: GranularityBuilding},
		Filter{Actions: []string{ActionPlaceArrival}},
		func(Intent) {},
	)
	h.svc.Run(48 * time.Hour)
	profiles := h.svc.Profiles()
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	withActivity := 0
	for _, p := range profiles {
		if p.Activity == nil {
			continue
		}
		withActivity++
		if p.Activity.Total() == 0 {
			t.Error("empty activity summary attached")
		}
		// A normal day is mostly stationary.
		if p.Activity.StillMinutes <= p.Activity.MovingMinutes {
			t.Errorf("day %s: moving %d >= still %d", p.Date, p.Activity.MovingMinutes, p.Activity.StillMinutes)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("day %s invalid: %v", p.Date, err)
		}
	}
	if withActivity == 0 {
		t.Error("no day carries an activity summary")
	}
}

func TestServiceNoActivityWithoutDemand(t *testing.T) {
	h := newHarness(t, 114, 1)
	// Area-level only: accelerometer never runs, so no activity summaries.
	h.svc.Connect(
		Requirement{AppID: "ads", Granularity: GranularityArea},
		Filter{Actions: []string{ActionPlaceArrival}},
		func(Intent) {},
	)
	h.svc.Run(24 * time.Hour)
	for _, p := range h.svc.Profiles() {
		if p.Activity != nil {
			t.Error("activity summary without accelerometer demand")
		}
	}
}

func TestServiceDynamicConnect(t *testing.T) {
	// Section 2.2.4: the inference module "frequently takes the registered
	// requests and accordingly invokes appropriate location interfaces" —
	// connecting an app mid-run must start triggered sensing, and
	// disconnecting must stop it.
	h := newHarness(t, 115, 3)
	h.svc.Run(24 * time.Hour)
	if h.meter.Samples(energy.WiFi) != 0 {
		t.Fatal("WiFi sampled before any app connected")
	}

	h.svc.Connect(
		Requirement{AppID: "late", Granularity: GranularityBuilding},
		Filter{Actions: []string{ActionPlaceArrival}},
		func(Intent) {},
	)
	h.svc.Run(24 * time.Hour)
	afterConnect := h.meter.Samples(energy.WiFi)
	if afterConnect == 0 {
		t.Fatal("connecting mid-run did not start WiFi sensing")
	}

	h.svc.Disconnect("late")
	h.svc.Run(24 * time.Hour)
	afterDisconnect := h.meter.Samples(energy.WiFi)
	// A burst in flight may add a scan or two, no more.
	if afterDisconnect > afterConnect+h.svc.cfg.WiFiBurstScans {
		t.Errorf("WiFi kept running after disconnect: %d -> %d", afterConnect, afterDisconnect)
	}
}

func TestServicePlaceToPlaceTransition(t *testing.T) {
	// A direct place-to-place recognition (tracker jumps from one known
	// place to another) must emit departure then arrival, never two open
	// arrivals.
	h := newHarness(t, 123, 4)
	var log []string
	h.svc.Connect(
		Requirement{AppID: "watcher", Granularity: GranularityBuilding},
		Filter{Actions: []string{ActionPlaceArrival, ActionPlaceDeparture}},
		func(in Intent) { log = append(log, in.Action+" "+in.Place.ID) },
	)
	h.svc.Run(96 * time.Hour)

	open := ""
	for _, e := range log {
		var action, place string
		if n, err := fmt.Sscanf(e, "%s %s", &action, &place); n != 2 || err != nil {
			t.Fatalf("bad log entry %q", e)
		}
		switch action {
		case ActionPlaceArrival:
			if open != "" {
				t.Fatalf("arrival at %s while still at %s", place, open)
			}
			open = place
		case ActionPlaceDeparture:
			if open != place && open != "" {
				t.Fatalf("departure from %s while at %s", place, open)
			}
			open = ""
		}
	}
}
