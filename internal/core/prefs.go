package core

import "sync"

// Preferences is the user-preference module (paper Section 2.2.1): per-app
// place-granularity permissions plus the single switch that turns all
// place-centric delivery off. Safe for concurrent use.
type Preferences struct {
	mu sync.RWMutex

	defaultGranularity Granularity
	perApp             map[string]Granularity
	killSwitch         bool
}

// NewPreferences returns preferences that permit every app the given default
// granularity until overridden.
func NewPreferences(defaultGranularity Granularity) *Preferences {
	if !defaultGranularity.Valid() {
		defaultGranularity = GranularityBuilding
	}
	return &Preferences{
		defaultGranularity: defaultGranularity,
		perApp:             make(map[string]Granularity),
	}
}

// SetAppGranularity caps what the app may receive.
func (p *Preferences) SetAppGranularity(appID string, g Granularity) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if g.Valid() {
		p.perApp[appID] = g
	}
}

// ClearAppGranularity reverts the app to the default cap.
func (p *Preferences) ClearAppGranularity(appID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.perApp, appID)
}

// Permitted returns the finest granularity the app may receive.
func (p *Preferences) Permitted(appID string) Granularity {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if g, ok := p.perApp[appID]; ok {
		return g
	}
	return p.defaultGranularity
}

// EffectiveGranularity clamps an app's requested granularity by the user's
// permission.
func (p *Preferences) EffectiveGranularity(appID string, requested Granularity) Granularity {
	return Clamp(requested, p.Permitted(appID))
}

// SetKillSwitch flips the global place-delivery switch ("a single control to
// switch off all place-centric applications").
func (p *Preferences) SetKillSwitch(off bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killSwitch = off
}

// Disabled reports whether all place delivery is switched off.
func (p *Preferences) Disabled() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.killSwitch
}

// DegradePlace returns a copy of the place payload reduced to the given
// granularity: coordinates snapped to the disclosure grid and accuracy
// widened. Labels survive only at building level or finer (an area-level
// consumer learns the neighbourhood, not the venue).
func DegradePlace(info PlaceInfo, g Granularity) PlaceInfo {
	out := info
	out.Granularity = g
	out.Center = DegradeCoordinates(info.Center, g)
	if acc := g.AccuracyMeters(); acc > out.AccuracyMeters {
		out.AccuracyMeters = acc
	}
	if g == GranularityArea {
		out.Label = ""
	}
	return out
}
