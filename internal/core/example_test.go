package core_test

import (
	"fmt"

	"repro/internal/core"
)

func ExampleClamp() {
	// An advertisement app asks for building-level places, but the user
	// permits it only area-level information (paper Section 2.2.1).
	effective := core.Clamp(core.GranularityBuilding, core.GranularityArea)
	fmt.Println(effective)
	// Output: area
}

func ExampleDegradePlace() {
	info := core.PlaceInfo{
		ID:          "p3",
		Label:       "City Library",
		Granularity: core.GranularityRoom,
	}
	degraded := core.DegradePlace(info, core.GranularityArea)
	fmt.Printf("label=%q granularity=%s accuracy=%.0fm\n",
		degraded.Label, degraded.Granularity, degraded.AccuracyMeters)
	// Output: label="" granularity=area accuracy=750m
}
