package core

import "repro/internal/obs"

// pmsMetrics is the mobile service's metric bundle (DESIGN.md §10).
//
// Family inventory:
//
//	pms_outbox_enqueued_total                 day keys ever queued for upload
//	pms_outbox_flushed_total                  queued uploads completed
//	pms_outbox_depth                          gauge of day keys currently queued
//	pms_plan_transitions_total{to=moving}     sensing-plan flips to moving
//	pms_plan_transitions_total{to=stationary} sensing-plan flips to stationary
//	pms_discoveries_total                     nightly discovery passes run
//	pms_sync_errors_total                     sync passes stopped by an upload failure
type pmsMetrics struct {
	outboxEnqueued *obs.Counter
	outboxFlushed  *obs.Counter
	outboxDepth    *obs.Gauge
	planMoving     *obs.Counter
	planStationary *obs.Counter
	discoveries    *obs.Counter
	syncErrors     *obs.Counter
}

func newPMSMetrics(reg *obs.Registry) *pmsMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	plan := reg.CounterVec("pms_plan_transitions_total", "to")
	return &pmsMetrics{
		outboxEnqueued: reg.Counter("pms_outbox_enqueued_total"),
		outboxFlushed:  reg.Counter("pms_outbox_flushed_total"),
		outboxDepth:    reg.Gauge("pms_outbox_depth"),
		planMoving:     plan.With("moving"),
		planStationary: plan.With("stationary"),
		discoveries:    reg.Counter("pms_discoveries_total"),
		syncErrors:     reg.Counter("pms_sync_errors_total"),
	}
}

// defaultPMSMetrics registers the pms_* families in the process-wide registry
// at package init, so a booted pmware-cloud exposes them on /metrics even
// though the server itself never drives a mobile service.
var defaultPMSMetrics = newPMSMetrics(nil)
