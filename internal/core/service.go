package core

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/gpsplace"
	"repro/internal/gsm"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/simclock"
	"repro/internal/social"
	"repro/internal/trace"
	"repro/internal/wifi"
	"repro/internal/world"
)

// CloudAPI is the slice of the PMWare Cloud Instance the mobile service
// needs. A nil CloudAPI makes the service compute everything on-device
// (paper Section 2.3.1 describes discovery offload as an optimization, not a
// requirement).
type CloudAPI interface {
	// DiscoverPlaces offloads GCA over the raw GSM trace.
	DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error)
	// SyncProfile uploads a finished day profile.
	SyncProfile(p *profile.DayProfile) error
	// GeolocateCell resolves a cell to approximate coordinates (the cloud's
	// Open-Cell-ID-style geo-location service). Returns the position and an
	// accuracy radius in meters.
	GeolocateCell(id world.CellID) (geo.LatLng, float64, error)
}

// Config tunes the mobile service. Zero value is not useful; start from
// DefaultConfig.
type Config struct {
	UserID string

	// Base sampling: GSM is tracked continuously — it is nearly free because
	// the modem is camped anyway (Section 2.2.2).
	GSMInterval time.Duration
	// AccelInterval drives the movement detector used for triggering.
	AccelInterval time.Duration
	// WiFiBurstScans and WiFiBurstInterval shape the scan burst fired on a
	// movement transition (arrival/departure refinement).
	WiFiBurstScans    int
	WiFiBurstInterval time.Duration
	// OpportunisticWiFiEvery is the background scan period while a
	// building-level (or finer) requirement is active.
	OpportunisticWiFiEvery time.Duration
	// RoomWiFiEvery and RoomGPSEvery are the additional duty cycles when a
	// room-level requirement is active.
	RoomWiFiEvery time.Duration
	RoomGPSEvery  time.Duration
	// RouteGPSInterval is the fix period while tracking a high-accuracy
	// route.
	RouteGPSInterval time.Duration
	// BluetoothEvery is the social-scan period while social discovery is
	// demanded and the user is at a tracked place.
	BluetoothEvery time.Duration
	// DiscoveryHour is the local hour at which the nightly (re-)discovery
	// and profile sync run.
	DiscoveryHour int

	GSMParams   gsm.Params
	WiFiParams  wifi.Params
	GPSParams   gpsplace.Params
	RouteParams route.Params

	// Peers supplies positions of other study participants for Bluetooth
	// proximity (empty outside multi-user studies).
	Peers map[string]trace.PositionFunc

	// Metrics is the registry the service's pms_* families register in (nil
	// means the process-wide default). Tests inject a private registry for
	// exact delta assertions.
	Metrics *obs.Registry
}

// DefaultConfig returns the configuration used by the deployment study.
func DefaultConfig(userID string) Config {
	return Config{
		UserID:                 userID,
		GSMInterval:            time.Minute,
		AccelInterval:          time.Minute,
		WiFiBurstScans:         5,
		WiFiBurstInterval:      time.Minute,
		OpportunisticWiFiEvery: 15 * time.Minute,
		RoomWiFiEvery:          5 * time.Minute,
		RoomGPSEvery:           10 * time.Minute,
		RouteGPSInterval:       30 * time.Second,
		BluetoothEvery:         5 * time.Minute,
		DiscoveryHour:          3,
		GSMParams:              gsm.DefaultParams(),
		WiFiParams:             wifi.DefaultParams(),
		GPSParams:              gpsplace.DefaultParams(),
		RouteParams:            route.DefaultParams(),
	}
}

// Service is the PMWare Mobile Service: one instance per device, shared by
// every connected application, eliminating redundant sensing and processing.
// Drive it with Run; it is not safe for concurrent use (the simulation is
// single-threaded).
type Service struct {
	cfg     Config
	clock   *simclock.Clock
	sensors *trace.Sensors
	meter   *energy.Meter

	Bus      *Bus
	Registry *Registry
	Prefs    *Preferences

	cloud CloudAPI

	// raw data buffers
	gsmObs []trace.GSMObservation
	gpsFix []trace.GPSFix

	// online detectors
	wifiDetector   *wifi.Detector
	socialDetector *social.Detector
	tracker        *gsm.Tracker

	// gsmPipe caches the incremental GCA pipeline across nightly passes, so
	// the on-device fallback costs O(new observations) instead of re-folding
	// the whole trace. gsmObs is append-only, which is exactly the contract
	// Pipeline.Extend needs.
	gsmPipe *gsm.Pipeline

	// discovered state
	places    []*UnifiedPlace
	labels    map[string]string
	gsmPlaces []*gsm.Place
	routesGSM []*route.GSMRoute
	routesGPS []*route.GPSRoute
	profiles  *profile.Builder
	synced    map[string]bool // day keys synced to cloud
	outbox    *Outbox         // failed uploads awaiting redelivery

	// live tracking state
	moving        bool
	pendingMoves  int
	burstLeft     int
	lastWiFiScan  time.Time
	lastRoomWiFi  time.Time
	lastRoomGPS   time.Time
	lastBluetooth time.Time
	currentGSM    int // tracker's current place, -1 otherwise
	currentPlace  string
	encounters    []social.Encounter
	activityLog   []trace.ActivitySample

	// high-accuracy route tracking
	routeTracking bool
	tripTicker    *simclock.Event
	tripFixes     []trace.GPSFix
	tripStart     time.Time
	tripFromPlace string

	// counters
	eventsEmitted   int
	discoveriesRun  int
	cloudSyncErrors int

	m *pmsMetrics
}

// NewService wires a mobile service over the given sensor bundle and clock.
// cloud may be nil for fully on-device operation.
func NewService(cfg Config, clock *simclock.Clock, sensors *trace.Sensors, meter *energy.Meter, cloud CloudAPI) *Service {
	s := &Service{
		cfg:            cfg,
		clock:          clock,
		sensors:        sensors,
		meter:          meter,
		Bus:            NewBus(),
		Registry:       NewRegistry(),
		Prefs:          NewPreferences(GranularityRoom),
		cloud:          cloud,
		wifiDetector:   wifi.NewDetector(cfg.WiFiParams),
		socialDetector: social.NewDetector(social.DefaultParams()),
		labels:         map[string]string{},
		profiles:       profile.NewBuilder(cfg.UserID),
		synced:         map[string]bool{},
		outbox:         NewOutbox(),
		currentGSM:     -1,
	}
	if cfg.Metrics != nil {
		s.m = newPMSMetrics(cfg.Metrics)
	} else {
		s.m = defaultPMSMetrics
	}
	s.outbox.instrument(s.m)
	return s
}

// Meter returns the energy meter charged by the service's sensing.
func (s *Service) Meter() *energy.Meter { return s.meter }

// Places returns the unified places discovered so far.
func (s *Service) Places() []*UnifiedPlace { return s.places }

// RawGSMPlaces returns the latest GCA output before fusion (used by the
// study's pipeline ablations).
func (s *Service) RawGSMPlaces() []*gsm.Place { return s.gsmPlaces }

// RawWiFiPlaces returns the online SensLoc places (used by the study's
// pipeline ablations).
func (s *Service) RawWiFiPlaces() []*wifi.Place { return s.wifiDetector.Places() }

// GSMRoutes returns the low-accuracy routes discovered so far.
func (s *Service) GSMRoutes() []*route.GSMRoute { return s.routesGSM }

// GPSRoutes returns the high-accuracy routes discovered so far.
func (s *Service) GPSRoutes() []*route.GPSRoute { return s.routesGPS }

// Profiles returns the day profiles built so far, in date order.
func (s *Service) Profiles() []*profile.DayProfile { return s.profiles.Days() }

// EventsEmitted returns the number of intents delivered to connected apps.
func (s *Service) EventsEmitted() int { return s.eventsEmitted }

// DiscoveriesRun returns how many nightly discovery passes have executed.
func (s *Service) DiscoveriesRun() int { return s.discoveriesRun }

// CurrentPlaceID returns the unified place the user is believed to be at, or
// "".
func (s *Service) CurrentPlaceID() string { return s.currentPlace }

// LabelPlace attaches a user-provided semantic label to a place (the
// visualization module's tagging flow, Section 2.2.5) and broadcasts
// ActionPlaceLabeled.
func (s *Service) LabelPlace(placeID, label string) error {
	var target *UnifiedPlace
	for _, p := range s.places {
		if p.ID == placeID {
			target = p
			break
		}
	}
	if target == nil {
		return fmt.Errorf("core: unknown place %q", placeID)
	}
	target.Label = label
	s.labels[placeID] = label
	info := s.placeInfo(target)
	s.broadcastPlace(ActionPlaceLabeled, info)
	return nil
}

// Label returns the user label for a place, if any.
func (s *Service) Label(placeID string) string { return s.labels[placeID] }

// Connect registers a connected application in one step: requirement plus
// intent subscription. It mirrors the use-case flow of Section 2.4.
func (s *Service) Connect(req Requirement, filter Filter, handler Handler) error {
	if err := s.Registry.Register(req); err != nil {
		return err
	}
	s.Bus.Register(req.AppID, filter, handler)
	return nil
}

// Disconnect removes an application.
func (s *Service) Disconnect(appID string) {
	s.Registry.Unregister(appID)
	s.Bus.Unregister(appID)
}

// Run drives the service from the clock's current time for the given
// duration of simulated life.
func (s *Service) Run(d time.Duration) {
	s.start()
	s.clock.RunFor(d)
}

// start installs the periodic sensing events on the clock.
func (s *Service) start() {
	s.clock.Every(s.cfg.GSMInterval, s.gsmTick)
	s.clock.Every(s.cfg.AccelInterval, s.accelTick)
	s.clock.Every(time.Minute, s.minuteTick)
	s.scheduleDiscovery()
}

// scheduleDiscovery arms the next nightly discovery run.
func (s *Service) scheduleDiscovery() {
	now := s.clock.Now()
	next := time.Date(now.Year(), now.Month(), now.Day(), s.cfg.DiscoveryHour, 0, 0, 0, now.Location())
	if !next.After(now) {
		next = next.AddDate(0, 0, 1)
	}
	s.clock.Schedule(next, func(c *simclock.Clock) {
		s.nightlyDiscovery()
		s.scheduleDiscovery()
	})
}
