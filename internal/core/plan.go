package core

import (
	"time"

	"repro/internal/energy"
)

// SensingPlan returns the steady-state interface duty cycles PMWare runs to
// serve a requirement tier — the closed-form counterpart of what the
// scheduler does live, used by the Figure 2 characterization and the
// triggered-sensing ablations.
//
// The plan encodes the paper's triggered-sensing policy (Section 2.2.2):
// GSM is always sampled (cheap, modem already camped); the accelerometer
// runs whenever triggering is needed; WiFi is scanned opportunistically at
// building level and periodically at room level; GPS joins only for
// room-level accuracy or high-accuracy route tracking.
//
// Burst activity (the scan bursts fired on movement transitions) is folded
// into the effective WiFi period: with ~8 transitions/day of 5 scans each,
// bursts add ~40 scans/day ≈ one scan per 36 minutes, which the effective
// periods below already dominate.
func SensingPlan(g Granularity, routes RouteAccuracy, cfg Config) []energy.Load {
	loads := []energy.Load{{Interface: energy.GSM, Interval: cfg.GSMInterval}}

	needTrigger := g >= GranularityBuilding || routes == RouteHigh
	if needTrigger {
		loads = append(loads, energy.Load{Interface: energy.Accelerometer, Interval: cfg.AccelInterval})
	}
	switch {
	case g == GranularityRoom:
		loads = append(loads,
			energy.Load{Interface: energy.WiFi, Interval: cfg.RoomWiFiEvery},
			energy.Load{Interface: energy.GPS, Interval: cfg.RoomGPSEvery},
		)
	case g == GranularityBuilding:
		loads = append(loads, energy.Load{Interface: energy.WiFi, Interval: effectiveWiFiPeriod(cfg)})
	}
	if routes == RouteHigh && g != GranularityRoom {
		// GPS runs only during trips (~2 h of 24), so the effective period
		// is the trip-time interval diluted 12x.
		loads = append(loads, energy.Load{Interface: energy.GPS, Interval: cfg.RouteGPSInterval * 12})
	}
	return loads
}

// effectiveWiFiPeriod folds transition bursts into the opportunistic period.
func effectiveWiFiPeriod(cfg Config) time.Duration {
	// Opportunistic rate plus ~40 burst scans/day.
	day := 24 * time.Hour
	opportunistic := float64(day / cfg.OpportunisticWiFiEvery)
	burst := 40.0
	return time.Duration(float64(day) / (opportunistic + burst))
}

// PlanBatteryHours projects battery duration under the plan.
func PlanBatteryHours(m energy.Model, loads []energy.Load) float64 {
	return m.BatteryLifeHoursCombined(loads)
}

// IsolatedAppsPlan models the no-middleware baseline of the paper's
// "high redundancy" critique (Section 1.3): n applications each running
// their own sensing stack for the same tier. Every interface load is
// duplicated n times because the apps do not coordinate.
func IsolatedAppsPlan(n int, g Granularity, routes RouteAccuracy, cfg Config) []energy.Load {
	var out []energy.Load
	for i := 0; i < n; i++ {
		out = append(out, SensingPlan(g, routes, cfg)...)
	}
	return out
}
