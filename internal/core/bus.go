package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
)

// Intent actions broadcast by the PMWare mobile service, mirroring the
// Android intent/broadcast mechanism the paper's Connected Applications
// Module uses (Section 2.2.4).
const (
	ActionNewPlace       = "pmware.intent.action.NEW_PLACE"
	ActionPlaceArrival   = "pmware.intent.action.PLACE_ARRIVAL"
	ActionPlaceDeparture = "pmware.intent.action.PLACE_DEPARTURE"
	ActionRouteComplete  = "pmware.intent.action.ROUTE_COMPLETE"
	ActionEncounter      = "pmware.intent.action.SOCIAL_ENCOUNTER"
	ActionPlaceLabeled   = "pmware.intent.action.PLACE_LABELED"
	// ActionRouteStart and ActionPredictedVisit are emitted by the cloud's
	// real-time event path (streaming ingest detects a departure leading
	// somewhere new, and the analytics engine predicts the next visit);
	// the cloud client's Subscribe bridge delivers them on this bus so apps
	// see the same intents whether discovery ran locally or in the cloud.
	ActionRouteStart     = "pmware.intent.action.ROUTE_START"
	ActionPredictedVisit = "pmware.intent.action.PREDICTED_NEXT_VISIT"
)

// PlaceInfo is the place payload delivered to connected applications. Its
// precision reflects the granularity the app is entitled to after the user's
// privacy clamp.
type PlaceInfo struct {
	ID             string
	Label          string
	Center         geo.LatLng
	AccuracyMeters float64
	Granularity    Granularity
	VisitCount     int
}

// RouteInfo is the route payload for ActionRouteComplete.
type RouteInfo struct {
	ID           string
	FromPlaceID  string
	ToPlaceID    string
	Start        time.Time
	End          time.Time
	HighAccuracy bool
	LengthMeters float64
}

// EncounterInfo is the payload for ActionEncounter.
type EncounterInfo struct {
	PeerID  string
	PlaceID string
	Start   time.Time
	End     time.Time
}

// Intent is a broadcast message: an action plus a typed payload.
type Intent struct {
	Action string
	At     time.Time
	// Place is set for place actions, Route for route actions, Encounter
	// for encounter actions.
	Place     *PlaceInfo
	Route     *RouteInfo
	Encounter *EncounterInfo
}

// Handler receives matching intents.
type Handler func(Intent)

// Filter selects the actions a registration is interested in, like an
// Android intent filter. An empty Actions list matches nothing.
type Filter struct {
	Actions []string
}

func (f Filter) matches(action string) bool {
	for _, a := range f.Actions {
		if a == action {
			return true
		}
	}
	return false
}

type subscription struct {
	appID   string
	filter  Filter
	handler Handler
	seq     int
}

// Bus is the intent broadcast fabric between PMS and connected applications.
// Dispatch is synchronous and in registration order, which keeps simulations
// deterministic. Safe for concurrent registration; Broadcast must not be
// called concurrently with itself.
type Bus struct {
	mu   sync.RWMutex
	subs map[string]*subscription
	seq  int

	delivered int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[string]*subscription)}
}

// Register installs (or replaces) the app's intent filter and handler.
//
// Ordering contract: intents are delivered in first-registration order.
// Re-registering an app updates its filter and handler in place without
// moving it in the delivery order; only Unregister followed by a fresh
// Register sends an app to the back of the line. The contract is pinned by
// TestBusDeliveryOrderProperty.
func (b *Bus) Register(appID string, filter Filter, handler Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	seq := b.seq + 1
	if prev, ok := b.subs[appID]; ok {
		// Keep the app's position: replacing a handler must not reshuffle
		// the delivery order other subscribers observe.
		seq = prev.seq
	} else {
		b.seq = seq
	}
	b.subs[appID] = &subscription{appID: appID, filter: filter, handler: handler, seq: seq}
}

// Unregister removes the app's subscription. Unknown apps are a no-op.
func (b *Bus) Unregister(appID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, appID)
}

// Subscribers returns the registered app IDs in first-registration order —
// the same order Broadcast delivers in.
func (b *Bus) Subscribers() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.ordered()
}

func (b *Bus) ordered() []string {
	ids := make([]string, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return b.subs[ids[i]].seq < b.subs[ids[j]].seq })
	return ids
}

// Broadcast delivers the intent to every subscriber whose filter matches, in
// first-registration order (see Register for the ordering contract).
// Returns the number of deliveries.
func (b *Bus) Broadcast(in Intent) int {
	b.mu.RLock()
	var targets []*subscription
	for _, id := range b.ordered() {
		s := b.subs[id]
		if s.filter.matches(in.Action) {
			targets = append(targets, s)
		}
	}
	b.mu.RUnlock()

	for _, s := range targets {
		s.handler(in)
	}
	b.mu.Lock()
	b.delivered += len(targets)
	b.mu.Unlock()
	return len(targets)
}

// Deliver sends an intent to one specific subscriber (an explicit intent in
// Android terms). Returns false when the app is unknown or its filter does
// not match the action.
func (b *Bus) Deliver(appID string, in Intent) bool {
	b.mu.RLock()
	s, ok := b.subs[appID]
	if ok && !s.filter.matches(in.Action) {
		ok = false
	}
	b.mu.RUnlock()
	if !ok {
		return false
	}
	s.handler(in)
	b.mu.Lock()
	b.delivered++
	b.mu.Unlock()
	return true
}

// Delivered returns the total number of intent deliveries so far.
func (b *Bus) Delivered() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.delivered
}
