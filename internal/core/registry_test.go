package core

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func hourTime(h int) time.Time { return simclock.Epoch.Add(time.Duration(h) * time.Hour) }

func TestRequirementValidate(t *testing.T) {
	good := Requirement{AppID: "todo", Granularity: GranularityBuilding, FromHour: 9, ToHour: 18}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid requirement rejected: %v", err)
	}
	bad := []Requirement{
		{AppID: "", Granularity: GranularityArea},
		{AppID: "x", Granularity: Granularity(0)},
		{AppID: "x", Granularity: GranularityArea, FromHour: -1},
		{AppID: "x", Granularity: GranularityArea, ToHour: 25},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad requirement %d accepted", i)
		}
	}
}

func TestActiveAtWindows(t *testing.T) {
	dayWindow := Requirement{AppID: "x", Granularity: GranularityArea, FromHour: 9, ToHour: 18}
	if !dayWindow.ActiveAt(hourTime(12)) {
		t.Error("noon should be active for 9-18")
	}
	if dayWindow.ActiveAt(hourTime(20)) {
		t.Error("20h should be inactive for 9-18")
	}
	if dayWindow.ActiveAt(hourTime(18)) {
		t.Error("ToHour is exclusive")
	}
	if !dayWindow.ActiveAt(hourTime(9)) {
		t.Error("FromHour is inclusive")
	}

	allDay := Requirement{AppID: "x", Granularity: GranularityArea}
	if !allDay.ActiveAt(hourTime(3)) {
		t.Error("equal hours mean always active")
	}

	night := Requirement{AppID: "x", Granularity: GranularityArea, FromHour: 22, ToHour: 6}
	if !night.ActiveAt(hourTime(23)) || !night.ActiveAt(hourTime(3)) {
		t.Error("wrapping window broken")
	}
	if night.ActiveAt(hourTime(12)) {
		t.Error("noon active for 22-6 window")
	}
}

func TestRegistryCRUD(t *testing.T) {
	g := NewRegistry()
	if err := g.Register(Requirement{AppID: "a", Granularity: GranularityArea}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Requirement{AppID: "", Granularity: GranularityArea}); err == nil {
		t.Error("invalid registration accepted")
	}
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
	if _, ok := g.Get("a"); !ok {
		t.Error("Get failed")
	}
	g.Register(Requirement{AppID: "a", Granularity: GranularityRoom}) // replace
	if r, _ := g.Get("a"); r.Granularity != GranularityRoom {
		t.Error("replace failed")
	}
	g.Unregister("a")
	if g.Len() != 0 {
		t.Error("unregister failed")
	}
}

func TestAllSorted(t *testing.T) {
	g := NewRegistry()
	for _, id := range []string{"zeta", "alpha", "mid"} {
		g.Register(Requirement{AppID: id, Granularity: GranularityArea})
	}
	all := g.All()
	if len(all) != 3 || all[0].AppID != "alpha" || all[2].AppID != "zeta" {
		t.Errorf("All() order: %v", all)
	}
}

func TestDemandAggregation(t *testing.T) {
	g := NewRegistry()
	g.Register(Requirement{AppID: "ads", Granularity: GranularityArea})
	g.Register(Requirement{AppID: "todo", Granularity: GranularityBuilding, FromHour: 9, ToHour: 18})
	g.Register(Requirement{AppID: "fit", Granularity: GranularityRoom, FromHour: 6, ToHour: 8, Routes: RouteHigh})
	g.Register(Requirement{AppID: "social", Granularity: GranularityArea, Social: true, TargetPlaceIDs: []string{"work"}})

	noon := g.DemandAt(hourTime(12))
	if noon.Finest != GranularityBuilding {
		t.Errorf("noon finest = %v", noon.Finest)
	}
	if noon.Routes != RouteNone {
		t.Errorf("noon routes = %v", noon.Routes)
	}
	if !noon.Social || noon.SocialEverywhere || !noon.SocialTargets["work"] {
		t.Errorf("noon social demand wrong: %+v", noon)
	}

	dawn := g.DemandAt(hourTime(7))
	if dawn.Finest != GranularityRoom || dawn.Routes != RouteHigh {
		t.Errorf("dawn demand = %+v", dawn)
	}

	night := g.DemandAt(hourTime(23))
	if night.Finest != GranularityArea {
		t.Errorf("night finest = %v", night.Finest)
	}
	if !night.AnyActive {
		t.Error("ads app is always active")
	}
}

func TestDemandEmpty(t *testing.T) {
	g := NewRegistry()
	d := g.DemandAt(hourTime(12))
	if d.AnyActive || d.Finest != 0 || d.Social {
		t.Errorf("empty demand = %+v", d)
	}
}

func TestSocialEverywhere(t *testing.T) {
	g := NewRegistry()
	g.Register(Requirement{AppID: "s", Granularity: GranularityArea, Social: true})
	d := g.DemandAt(hourTime(12))
	if !d.SocialEverywhere {
		t.Error("social with no targets should mean everywhere")
	}
}

func TestRouteAccuracyString(t *testing.T) {
	if RouteNone.String() != "none" || RouteLow.String() != "low" || RouteHigh.String() != "high" {
		t.Error("route accuracy names wrong")
	}
	if RouteAccuracy(9).String() != "RouteAccuracy(9)" {
		t.Error("unknown route accuracy name wrong")
	}
}
