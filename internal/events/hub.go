package events

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes the hub. Zero values pick the defaults.
type Config struct {
	// QueueCap is the per-subscriber bounded queue capacity. A subscriber
	// whose queue is full when an event arrives is evicted (stream closed,
	// event counted as dropped) rather than ever blocking the dispatch
	// loop. Default 64.
	QueueCap int
	// History is the per-user replay ring capacity backing Last-Event-ID
	// resume. A reconnect asking for events older than the ring holds gets
	// a gap signal instead of silence. Default 256.
	History int
	// Registry, when set, registers the pci_events_* metric families.
	Registry *obs.Registry
	// Now stamps PublishedUnixNano on events; injected for tests.
	// Default time.Now.
	Now func() time.Time
}

const (
	defaultQueueCap = 64
	defaultHistory  = 256
)

// Hub is the fanout core: one authoritative dispatch goroutine owns every
// per-user event log and every subscriber queue, so publish and subscribe
// paths serialize through a single command channel and the emit path takes
// no locks at all — fanout is a non-blocking send per subscriber,
// O(subscribers) per event. Slow consumers are evicted, never waited on.
//
// Events are sequence-numbered per user (1-based, gapless) and retained in
// a bounded ring; a subscriber presenting Last-Event-ID resumes with an
// exact replay when the ring still holds the tail, and an explicit gap
// signal when it does not.
type Hub struct {
	cfg  Config
	cmds chan hubCmd
	quit chan struct{}
	done chan struct{}

	closeOnce sync.Once

	// users is owned by the dispatch loop; no lock anywhere.
	users map[string]*userStream

	published   *obs.Counter
	delivered   *obs.Counter
	dropped     *obs.Counter
	evictions   *obs.Counter
	resumed     *obs.Counter
	gaps        *obs.Counter
	subscribers *obs.Gauge
}

type userStream struct {
	seq   uint64  // last assigned sequence number
	ring  []Event // cyclic replay buffer, capacity cfg.History
	count int     // live entries in ring (<= cap)
	subs  []*Subscriber
}

type hubCmd struct {
	// exactly one of the following is set
	pub     *Event // publish (UserID already filled)
	sub     *subscribeReq
	unsub   *Subscriber
	barrier chan struct{} // closed once every prior command applied
}

type subscribeReq struct {
	userID  string
	lastSeq uint64
	reply   chan *Subscriber
}

// Subscriber is one attached consumer. Read events from C until it closes;
// then check Evicted to distinguish slow-consumer eviction (resume with
// Last-Event-ID) from hub shutdown.
type Subscriber struct {
	// UserID is the stream this subscriber is attached to.
	UserID string
	// C delivers events in sequence order. Closed on eviction, Close, or
	// hub shutdown.
	C <-chan Event
	// Gap is true when the subscription's Last-Event-ID predates the
	// replay ring: events were lost and the consumer should resynchronize
	// out of band. Set before the Subscriber is returned; read-only after.
	Gap bool
	// HeadSeq is the user stream's head sequence number at subscribe time
	// (the gap signal's payload). Read-only after return.
	HeadSeq uint64

	hub       *Hub
	ch        chan Event
	evicted   bool // owned by the dispatch loop until ch closes
	closeOnce sync.Once
}

// Evicted reports whether the stream was closed because this consumer fell
// more than the queue capacity behind. Valid only after C is closed (the
// close of C happens-before the reader observing it).
func (s *Subscriber) Evicted() bool { return s.evicted }

// Close detaches the subscriber. Idempotent; safe after eviction and after
// hub shutdown.
func (s *Subscriber) Close() {
	s.closeOnce.Do(func() {
		select {
		case s.hub.cmds <- hubCmd{unsub: s}:
		case <-s.hub.quit:
		}
	})
}

// NewHub starts the dispatch loop.
func NewHub(cfg Config) *Hub {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = defaultQueueCap
	}
	if cfg.History <= 0 {
		cfg.History = defaultHistory
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	h := &Hub{
		cfg:   cfg,
		cmds:  make(chan hubCmd, 256),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		users: map[string]*userStream{},
	}
	if r := cfg.Registry; r != nil {
		h.published = r.Counter("pci_events_published_total")
		h.delivered = r.Counter("pci_events_delivered_total")
		h.dropped = r.Counter("pci_events_dropped_total")
		h.evictions = r.Counter("pci_events_evictions_total")
		h.resumed = r.Counter("pci_events_resumed_total")
		h.gaps = r.Counter("pci_events_resume_gaps_total")
		h.subscribers = r.Gauge("pci_events_subscribers")
	} else {
		h.published = &obs.Counter{}
		h.delivered = &obs.Counter{}
		h.dropped = &obs.Counter{}
		h.evictions = &obs.Counter{}
		h.resumed = &obs.Counter{}
		h.gaps = &obs.Counter{}
		h.subscribers = &obs.Gauge{}
	}
	go h.loop()
	return h
}

// Publish hands an event to the dispatch loop. The hub assigns the sequence
// number and publish stamp; ev.UserID must be set. Returns false after
// Close. Publish never waits on any subscriber — only on the dispatch
// loop's own (drained-at-memory-speed) command queue.
func (h *Hub) Publish(ev Event) bool {
	select {
	case <-h.quit:
		// Checked first: the command channel is buffered, so without this a
		// post-Close publish could still win the select below.
		return false
	default:
	}
	select {
	case h.cmds <- hubCmd{pub: &ev}:
		return true
	case <-h.quit:
		return false
	}
}

// Subscribe attaches a consumer to a user's event stream. lastSeq is the
// Last-Event-ID already seen (0 for a fresh subscription); events after it
// still held by the replay ring are queued before any live event. Returns
// nil after Close.
func (h *Hub) Subscribe(userID string, lastSeq uint64) *Subscriber {
	req := &subscribeReq{userID: userID, lastSeq: lastSeq, reply: make(chan *Subscriber, 1)}
	select {
	case <-h.quit:
		return nil
	default:
	}
	select {
	case h.cmds <- hubCmd{sub: req}:
	case <-h.quit:
		return nil
	}
	select {
	case s := <-req.reply:
		return s
	case <-h.done:
		// Loop exited between enqueue and apply.
		select {
		case s := <-req.reply:
			return s
		default:
			return nil
		}
	}
}

// Sync blocks until every command published before the call has been
// applied — the test seam for making asynchronous publishes observable.
func (h *Hub) Sync() {
	barrier := make(chan struct{})
	select {
	case h.cmds <- hubCmd{barrier: barrier}:
	case <-h.quit:
		return
	}
	select {
	case <-barrier:
	case <-h.done:
	}
}

// Close stops the dispatch loop and closes every subscriber stream.
// Idempotent.
func (h *Hub) Close() {
	h.closeOnce.Do(func() { close(h.quit) })
	<-h.done
}

func (h *Hub) loop() {
	defer close(h.done)
	for {
		select {
		case cmd := <-h.cmds:
			h.apply(cmd)
		case <-h.quit:
			// Drain what was already enqueued, then shut down.
			for {
				select {
				case cmd := <-h.cmds:
					h.apply(cmd)
				default:
					for _, us := range h.users {
						for _, s := range us.subs {
							close(s.ch)
						}
						us.subs = nil
					}
					h.subscribers.Set(0)
					return
				}
			}
		}
	}
}

func (h *Hub) apply(cmd hubCmd) {
	switch {
	case cmd.pub != nil:
		h.publish(*cmd.pub)
	case cmd.sub != nil:
		cmd.sub.reply <- h.subscribe(cmd.sub)
	case cmd.unsub != nil:
		h.unsubscribe(cmd.unsub)
	case cmd.barrier != nil:
		close(cmd.barrier)
	}
}

func (h *Hub) stream(userID string) *userStream {
	us := h.users[userID]
	if us == nil {
		us = &userStream{ring: make([]Event, h.cfg.History)}
		h.users[userID] = us
	}
	return us
}

// publish is the emit path: assign seq, remember for resume, fan out with a
// non-blocking send per subscriber. Runs on the dispatch goroutine only.
func (h *Hub) publish(ev Event) {
	us := h.stream(ev.UserID)
	us.seq++
	ev.Seq = us.seq
	ev.PublishedUnixNano = h.cfg.Now().UnixNano()
	us.ring[int((us.seq-1)%uint64(len(us.ring)))] = ev
	if us.count < len(us.ring) {
		us.count++
	}
	h.published.Inc()

	kept := us.subs[:0]
	for _, s := range us.subs {
		select {
		case s.ch <- ev:
			h.delivered.Inc()
			kept = append(kept, s)
		default:
			// Queue full: the consumer is more than QueueCap behind.
			// Evict it rather than block or grow — it can resume from
			// Last-Event-ID while the ring still holds the tail.
			s.evicted = true
			close(s.ch)
			h.dropped.Inc()
			h.evictions.Inc()
			h.subscribers.Dec()
		}
	}
	// Zero the tail so evicted subscribers are collectable.
	for i := len(kept); i < len(us.subs); i++ {
		us.subs[i] = nil
	}
	us.subs = kept
}

func (h *Hub) subscribe(req *subscribeReq) *Subscriber {
	us := h.stream(req.userID)

	var replay []Event
	gap := false
	if req.lastSeq > us.seq {
		// The client is ahead of us — a server restart reset the stream.
		gap = true
	} else if req.lastSeq < us.seq {
		oldest := us.seq - uint64(us.count) + 1
		from := req.lastSeq + 1
		if from < oldest {
			gap = true
			from = oldest
		}
		for seq := from; seq <= us.seq; seq++ {
			replay = append(replay, us.ring[int((seq-1)%uint64(len(us.ring)))])
		}
	}

	// Size the queue to hold the whole replay when it exceeds the nominal
	// cap, so a legitimate resume is never evicted before its first read.
	capacity := h.cfg.QueueCap
	if len(replay) > capacity {
		capacity = len(replay)
	}
	s := &Subscriber{
		UserID:  req.userID,
		Gap:     gap,
		HeadSeq: us.seq,
		hub:     h,
		ch:      make(chan Event, capacity),
	}
	s.C = s.ch
	for _, ev := range replay {
		s.ch <- ev
		h.delivered.Inc()
	}
	us.subs = append(us.subs, s)
	h.subscribers.Inc()
	if req.lastSeq > 0 {
		h.resumed.Inc()
	}
	if gap {
		h.gaps.Inc()
	}
	return s
}

func (h *Hub) unsubscribe(s *Subscriber) {
	us := h.users[s.UserID]
	if us == nil {
		return
	}
	for i, cur := range us.subs {
		if cur == s {
			us.subs = append(us.subs[:i], us.subs[i+1:]...)
			close(s.ch)
			h.subscribers.Dec()
			return
		}
	}
	// Already evicted or closed by shutdown: nothing to do.
}
