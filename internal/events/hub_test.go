package events

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

func testNow() func() time.Time {
	var mu sync.Mutex
	t := simclock.Epoch
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func publishN(t *testing.T, h *Hub, user string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !h.Publish(Event{Type: KindPlaceEntry, UserID: user}) {
			t.Fatalf("Publish %d rejected", i)
		}
	}
	h.Sync()
}

// drain reads everything currently queued without blocking on a live hub.
func drain(sub *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestHubDeliversInOrder(t *testing.T) {
	h := NewHub(Config{Now: testNow()})
	defer h.Close()
	sub := h.Subscribe("u1", 0)
	publishN(t, h, "u1", 10)
	got := drain(sub)
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.PublishedUnixNano == 0 {
			t.Errorf("event %d: missing publish stamp", i)
		}
	}
	// Streams are per user: another user's subscriber sees nothing.
	other := h.Subscribe("u2", 0)
	h.Sync()
	if evs := drain(other); len(evs) != 0 {
		t.Errorf("cross-user leak: %d events", len(evs))
	}
}

// TestHubSlowConsumerEviction pins the backpressure policy deterministically:
// a subscriber that never reads survives exactly QueueCap queued events and
// is evicted by the QueueCap+1st, with the dropped and eviction counters
// moving by exactly one and the dispatch loop never blocking.
func TestHubSlowConsumerEviction(t *testing.T) {
	reg := obs.NewRegistry()
	const queueCap = 8
	h := NewHub(Config{QueueCap: queueCap, Registry: reg, Now: testNow()})
	defer h.Close()

	slow := h.Subscribe("u1", 0)
	fast := h.Subscribe("u1", 0)

	dropped := reg.Counter("pci_events_dropped_total")
	evictions := reg.Counter("pci_events_evictions_total")

	// Exactly QueueCap events fit; nobody is evicted yet.
	publishN(t, h, "u1", queueCap)
	if d := dropped.Value(); d != 0 {
		t.Fatalf("dropped after %d events = %d, want 0", queueCap, d)
	}
	if g := reg.Gauge("pci_events_subscribers").Value(); g != 2 {
		t.Fatalf("subscribers gauge = %d, want 2", g)
	}
	// Drain the fast consumer synchronously — a background goroutine might
	// never get scheduled between publishes on a single-CPU runner, and
	// this test is about the slow subscriber's queue, not the scheduler's.
	for i := 0; i < queueCap; i++ {
		<-fast.C
	}

	// The next event overflows the slow consumer's queue: evicted, exactly
	// one drop, and the publish itself still lands (fast consumer gets it).
	publishN(t, h, "u1", 1)
	if ev := <-fast.C; ev.Seq != queueCap+1 {
		t.Errorf("fast consumer got seq %d, want %d", ev.Seq, queueCap+1)
	}
	if d := dropped.Value(); d != 1 {
		t.Errorf("dropped = %d, want exactly 1", d)
	}
	if e := evictions.Value(); e != 1 {
		t.Errorf("evictions = %d, want exactly 1", e)
	}
	if g := reg.Gauge("pci_events_subscribers").Value(); g != 1 {
		t.Errorf("subscribers gauge = %d, want 1 after eviction", g)
	}

	// The evicted subscriber's channel closes after the queued backlog; the
	// QueueCap events already queued are still readable.
	got := 0
	for range slow.C {
		got++
	}
	if got != queueCap {
		t.Errorf("evicted subscriber read %d events, want %d", got, queueCap)
	}
	if !slow.Evicted() {
		t.Error("Evicted() = false after slow-consumer close")
	}

	// Eviction never blocked the dispatch loop: more publishes flow, and
	// the surviving subscriber receives every one (drained in lockstep so
	// its own queue never overflows).
	for i := 0; i < 100; i++ {
		publishN(t, h, "u1", 1)
		if ev := <-fast.C; ev.Seq != uint64(queueCap+2+i) {
			t.Fatalf("post-eviction event %d: seq %d, want %d", i, ev.Seq, queueCap+2+i)
		}
	}
	if p := reg.Counter("pci_events_published_total").Value(); p != uint64(queueCap+1+100) {
		t.Errorf("published = %d, want %d", p, queueCap+1+100)
	}
}

// TestHubResume pins Last-Event-ID resume: a subscriber reconnecting with
// the last seq it saw receives every later event exactly once, in order,
// with no gap signal while the replay ring still holds the tail.
func TestHubResume(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHub(Config{QueueCap: 4, History: 64, Registry: reg, Now: testNow()})
	defer h.Close()

	publishN(t, h, "u1", 10)
	sub := h.Subscribe("u1", 6)
	if sub.Gap {
		t.Fatal("unexpected gap: ring holds seq 1..10, resumed from 6")
	}
	got := drain(sub)
	want := []uint64{7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i, ev := range got {
		if ev.Seq != want[i] {
			t.Errorf("replay[%d].Seq = %d, want %d", i, ev.Seq, want[i])
		}
	}
	// Replay larger than QueueCap must not insta-evict the subscriber.
	big := h.Subscribe("u1", 0)
	if evs := drain(big); len(evs) != 10 || big.Evicted() {
		t.Errorf("full replay: got %d events, evicted=%v; want 10, false", len(evs), big.Evicted())
	}
	if r := reg.Counter("pci_events_resumed_total").Value(); r != 1 {
		t.Errorf("resumed = %d, want 1", r)
	}
	if g := reg.Counter("pci_events_resume_gaps_total").Value(); g != 0 {
		t.Errorf("gaps = %d, want 0", g)
	}
}

// TestHubResumeGap pins the gap signal: asking for events the ring no longer
// holds flags Gap and replays what is still available, and a Last-Event-ID
// from a previous server incarnation (ahead of the stream) flags Gap too.
func TestHubResumeGap(t *testing.T) {
	reg := obs.NewRegistry()
	const history = 16
	h := NewHub(Config{History: history, Registry: reg, Now: testNow()})
	defer h.Close()

	publishN(t, h, "u1", 100) // ring holds 85..100
	sub := h.Subscribe("u1", 10)
	if !sub.Gap {
		t.Fatal("Gap = false resuming from seq 10 with ring at 85..100")
	}
	if sub.HeadSeq != 100 {
		t.Errorf("HeadSeq = %d, want 100", sub.HeadSeq)
	}
	got := drain(sub)
	if len(got) != history {
		t.Fatalf("replayed %d, want the full ring (%d)", len(got), history)
	}
	if got[0].Seq != 85 || got[len(got)-1].Seq != 100 {
		t.Errorf("replay spans %d..%d, want 85..100", got[0].Seq, got[len(got)-1].Seq)
	}

	ahead := h.Subscribe("u1", 500)
	if !ahead.Gap {
		t.Error("Gap = false for Last-Event-ID ahead of the stream")
	}
	if g := reg.Counter("pci_events_resume_gaps_total").Value(); g != 2 {
		t.Errorf("gaps = %d, want 2", g)
	}
}

// TestHubWedgedSubscriberNeverBlocksPublish pins the no-blocking guarantee
// with a subscriber that is never read at all: publishing far past its queue
// capacity completes promptly.
func TestHubWedgedSubscriberNeverBlocksPublish(t *testing.T) {
	h := NewHub(Config{QueueCap: 2, Now: testNow()})
	defer h.Close()
	_ = h.Subscribe("u1", 0) // wedged: never read
	done := make(chan struct{})
	go func() {
		publishN(t, h, "u1", 1000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a wedged subscriber")
	}
}

// TestHubConcurrentStress runs N publishers x M subscribers under -race:
// sequences are assigned gaplessly, every subscriber observes a strictly
// increasing subsequence, and subscribers that keep up see the full stream.
func TestHubConcurrentStress(t *testing.T) {
	const (
		publishers  = 4
		perPub      = 200
		subscribers = 8
		total       = publishers * perPub
	)
	reg := obs.NewRegistry()
	// Queues sized for the whole run: keeping-up consumers must survive any
	// scheduling; a separate test covers eviction.
	h := NewHub(Config{QueueCap: total, Registry: reg, Now: testNow()})
	defer h.Close()

	var wg sync.WaitGroup
	seqs := make([][]uint64, subscribers)
	for i := 0; i < subscribers; i++ {
		sub := h.Subscribe("u1", 0)
		wg.Add(1)
		go func(i int, sub *Subscriber) {
			defer wg.Done()
			for ev := range sub.C {
				seqs[i] = append(seqs[i], ev.Seq)
				if len(seqs[i]) == total {
					sub.Close()
				}
			}
		}(i, sub)
	}
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if !h.Publish(Event{Type: KindPlaceEntry, UserID: "u1", Label: fmt.Sprintf("p%d-%d", p, i)}) {
					t.Errorf("publisher %d: publish %d rejected", p, i)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	if p := reg.Counter("pci_events_published_total").Value(); p != total {
		t.Fatalf("published = %d, want %d", p, total)
	}
	if d := reg.Counter("pci_events_dropped_total").Value(); d != 0 {
		t.Fatalf("dropped = %d, want 0 (queues sized for the whole run)", d)
	}
	for i, got := range seqs {
		if len(got) != total {
			t.Errorf("subscriber %d saw %d events, want %d", i, len(got), total)
			continue
		}
		for j, s := range got {
			if s != uint64(j+1) {
				t.Errorf("subscriber %d: seq[%d] = %d, want %d", i, j, s, j+1)
				break
			}
		}
	}
}

// TestHubCloseUnblocksEveryone pins shutdown: Close closes every subscriber
// stream, later Publish/Subscribe fail fast, and Close is idempotent.
func TestHubCloseUnblocksEveryone(t *testing.T) {
	h := NewHub(Config{Now: testNow()})
	sub := h.Subscribe("u1", 0)
	h.Close()
	h.Close() // idempotent
	if _, ok := <-sub.C; ok {
		// Drain whatever was queued; the channel must eventually close.
		for range sub.C {
		}
	}
	if sub.Evicted() {
		t.Error("shutdown close flagged as eviction")
	}
	if h.Publish(Event{UserID: "u1"}) {
		t.Error("Publish accepted after Close")
	}
	if s := h.Subscribe("u1", 0); s != nil {
		t.Error("Subscribe returned a subscriber after Close")
	}
	sub.Close() // safe after shutdown
}
