package events

import (
	"repro/internal/gsm"
	"repro/internal/trace"
	"repro/internal/world"
)

// Detector turns an observation stream into place transitions online, one
// observation at a time, emitting each transition at the earliest moment it
// is final:
//
//   - place_entry fires when the open stationary run first satisfies
//     MinStay. The pipeline fixes the run's start index the moment the run
//     opens, so the eventual segment's Start is already exact — the entry
//     can never be retracted or shifted by later observations.
//   - place_exit fires when a non-stationary observation closes the run;
//     the segment (and its cell set) is final at that instant.
//   - route_start fires together with the entry of the following stay,
//     anchored at the previous stay's end — the first moment the detector
//     knows the departure actually led somewhere new.
//
// The stream is pinned byte-identical to FromSegments over a batch
// discovery of the same trace (TestDetectorMatchesBatch), the same
// equivalence discipline the incremental pipeline itself carries.
// A Detector is not safe for concurrent use.
type Detector struct {
	pipe *gsm.Pipeline

	emitted   int  // finalized segments whose exit has been emitted
	entryOpen bool // entry already emitted for the current stay
	haveLast  bool // a previous stay exists (route_start anchor is valid)
}

// NewDetector returns a detector over a fresh incremental pipeline.
func NewDetector(p gsm.Params) *Detector {
	return &Detector{pipe: gsm.NewPipeline(p)}
}

// Len returns the number of observations consumed so far.
func (d *Detector) Len() int { return d.pipe.Len() }

// Params returns the discovery parameters the detector was built with.
func (d *Detector) Params() gsm.Params { return d.pipe.Params() }

// Feed consumes the next batch of the trace (which must continue the time
// order of everything consumed before) and returns the transitions that
// became final, in order.
func (d *Detector) Feed(obs []trace.GSMObservation) []Transition {
	var out []Transition
	for i := range obs {
		d.pipe.Extend(obs[i : i+1])
		out = d.step(out)
	}
	return out
}

// CatchUp replays an already-processed trace prefix, advancing detector
// state while discarding the transitions: the rebuild path after a cache
// eviction or a trace generation change, where the prefix's transitions
// were emitted by a previous detector incarnation (or are deliberately
// suppressed for a wholesale-replaced trace).
func (d *Detector) CatchUp(obs []trace.GSMObservation) {
	// Replay in one Extend: finality does not depend on batch boundaries,
	// and the per-observation bookkeeping below only matters for emission.
	d.pipe.Extend(obs)
	segs := d.pipe.FinalSegments()
	d.emitted = len(segs)
	_, _, open := d.pipe.OpenStay()
	d.entryOpen = open
	d.haveLast = len(segs) > 0
}

// step collects transitions finalized by the last consumed observation.
func (d *Detector) step(out []Transition) []Transition {
	segs := d.pipe.FinalSegments()
	for d.emitted < len(segs) {
		s := segs[d.emitted]
		if !d.entryOpen {
			// Defensive: a stay can in principle finalize without its
			// entry having fired (it cannot, given per-observation
			// feeding, but emission order must survive any future
			// batching change).
			if d.haveLast {
				out = append(out, Transition{Kind: KindRouteStart, At: segs[d.emitted-1].End})
			}
			out = append(out, Transition{Kind: KindPlaceEntry, At: s.Start})
		}
		out = append(out, Transition{
			Kind:  KindPlaceExit,
			At:    s.End,
			Start: s.Start,
			Cells: SortedCells(s.Cells),
		})
		d.entryOpen = false
		d.haveLast = true
		d.emitted++
	}
	if start, _, ok := d.pipe.OpenStay(); ok && !d.entryOpen {
		if d.haveLast {
			out = append(out, Transition{Kind: KindRouteStart, At: segs[len(segs)-1].End})
		}
		out = append(out, Transition{Kind: KindPlaceEntry, At: start, Hint: d.openCells()})
		d.entryOpen = true
	}
	return out
}

// PendingExit returns the exit transition the open stay would produce if the
// trace ended now — what batch derivation reports for the open tail segment.
// ok is false when no stay is open past MinStay.
func (d *Detector) PendingExit() (Transition, bool) {
	tail, ok := d.pipe.OpenSegment()
	if !ok {
		return Transition{}, false
	}
	return Transition{
		Kind:  KindPlaceExit,
		At:    tail.End,
		Start: tail.Start,
		Cells: SortedCells(tail.Cells),
	}, true
}

// openCells snapshots the open stay's cell set so far — enrichment for the
// entry event (a prefix of the eventual final set, deliberately outside the
// canonical transition).
func (d *Detector) openCells() []world.CellID {
	tail, ok := d.pipe.OpenSegment()
	if !ok {
		return nil
	}
	return SortedCells(tail.Cells)
}
