package events

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The SSE framing shared by the server handler and the client's Subscribe
// loop. Frames follow the text/event-stream format: `id:`, `event:`, and
// `data:` fields terminated by a blank line; lines starting with ':' are
// comments (the heartbeat carrier).

// Frame is one parsed server-sent event.
type Frame struct {
	// ID is the raw `id:` field ("" when absent).
	ID string
	// Event is the `event:` field — an event kind or a control kind.
	Event string
	// Data is the `data:` payload (multiple data lines joined with '\n').
	Data []byte
}

// Seq parses the frame's ID as a sequence number, 0 when absent/invalid.
func (f Frame) Seq() uint64 {
	n, err := strconv.ParseUint(f.ID, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// DecodeEvent unmarshals the frame payload into an Event.
func (f Frame) DecodeEvent() (Event, error) {
	var ev Event
	err := json.Unmarshal(f.Data, &ev)
	return ev, err
}

// WriteEvent writes one event frame.
func WriteEvent(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// WriteControl writes a control frame (reset, evicted) whose payload is the
// stream's head sequence number.
func WriteControl(w io.Writer, kind string, headSeq uint64) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: {\"seq\":%d}\n\n", kind, headSeq)
	return err
}

// WriteHeartbeat writes a comment frame. Comments keep intermediaries from
// idling out the connection and let the server notice dead peers via write
// errors; parsers must skip them.
func WriteHeartbeat(w io.Writer) error {
	_, err := io.WriteString(w, ": hb\n\n")
	return err
}

// FrameReader incrementally parses a text/event-stream body.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps the response body.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Next returns the next non-comment frame, or an error when the stream
// ends (io.EOF on clean close).
func (r *FrameReader) Next() (Frame, error) {
	var f Frame
	var data [][]byte
	seen := false
	for {
		line, err := r.br.ReadString('\n')
		if err != nil {
			// A frame truncated mid-flight is not deliverable; surface
			// the transport error so the caller reconnects and resumes.
			return Frame{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !seen {
				continue // stray blank or heartbeat terminator
			}
			f.Data = bytes.Join(data, []byte("\n"))
			return f, nil
		case strings.HasPrefix(line, ":"):
			continue // comment / heartbeat
		case strings.HasPrefix(line, "id:"):
			f.ID = strings.TrimSpace(line[len("id:"):])
			seen = true
		case strings.HasPrefix(line, "event:"):
			f.Event = strings.TrimSpace(line[len("event:"):])
			seen = true
		case strings.HasPrefix(line, "data:"):
			d := strings.TrimPrefix(line[len("data:"):], " ")
			data = append(data, []byte(d))
			seen = true
		default:
			// Unknown field: per spec, ignore.
		}
	}
}
