package events

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fanoutRun is one measured row of BENCH_events.json: a hub with one hot user
// stream, N draining subscribers, and E published events — deliveries per
// second is the fanout throughput, and the latency columns are hub publish
// stamp to subscriber receive.
type fanoutRun struct {
	Subscribers      int     `json:"subscribers"`
	Events           int     `json:"events"`
	QueueCap         int     `json:"queue_cap"`
	Delivered        uint64  `json:"delivered"`
	Evicted          int     `json:"evicted"`
	WallSec          float64 `json:"wall_sec"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
	DeliveryP50US    float64 `json:"delivery_p50_us"`
	DeliveryP99US    float64 `json:"delivery_p99_us"`
	DeliveryMaxUS    int64   `json:"delivery_max_us"`
}

// measureFanout runs one fanout measurement. Subscribers drain as fast as
// they can; the wall clock spans first publish to last receive.
func measureFanout(subscribers, eventsN, queueCap int) (fanoutRun, error) {
	h := NewHub(Config{QueueCap: queueCap})
	defer h.Close()

	subs := make([]*Subscriber, subscribers)
	for i := range subs {
		subs[i] = h.Subscribe("bench", 0)
	}

	var wg sync.WaitGroup
	hists := make([]obs.HistogramSnapshot, subscribers)
	received := make([]uint64, subscribers)
	evicted := make([]bool, subscribers)
	start := time.Now()
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hist := obs.NewHistogram(obs.DefaultLatencyBuckets())
			n := uint64(0)
			for ev := range subs[i].C {
				n++
				hist.ObserveDuration(time.Since(time.Unix(0, ev.PublishedUnixNano)))
				if n == uint64(eventsN) {
					break
				}
			}
			if n < uint64(eventsN) && subs[i].Evicted() {
				evicted[i] = true
			}
			subs[i].Close()
			received[i] = n
			hists[i] = hist.Snapshot()
		}(i)
	}
	for i := 0; i < eventsN; i++ {
		if !h.Publish(Event{Type: KindPlaceEntry, UserID: "bench", Label: "fanout"}) {
			return fanoutRun{}, fmt.Errorf("publish %d rejected", i)
		}
		// Yield between publishes so consumers get scheduled even on a
		// single-CPU runner; otherwise the measurement degenerates into
		// queue-fill-then-evict and never exercises sustained fanout.
		runtime.Gosched()
	}
	wg.Wait()
	wall := time.Since(start)

	run := fanoutRun{
		Subscribers: subscribers,
		Events:      eventsN,
		QueueCap:    queueCap,
		WallSec:     wall.Seconds(),
	}
	merged := hists[0]
	for i, h := range hists {
		run.Delivered += received[i]
		if evicted[i] {
			run.Evicted++
		}
		if i > 0 {
			var err error
			if merged, err = obs.MergeHistogramSnapshots(merged, h); err != nil {
				return fanoutRun{}, err
			}
		}
	}
	if run.WallSec > 0 {
		run.DeliveriesPerSec = float64(run.Delivered) / run.WallSec
	}
	run.DeliveryP50US = merged.Quantile(0.50)
	run.DeliveryP99US = merged.Quantile(0.99)
	if merged.Count > 0 {
		run.DeliveryMaxUS = merged.Max
	}
	return run, nil
}

// BenchmarkHubFanout is the CI bench-smoke surface: one hot user stream
// fanned out to N subscribers, reporting deliveries per second.
func BenchmarkHubFanout(b *testing.B) {
	for _, subscribers := range []int{8, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", subscribers), func(b *testing.B) {
			run, err := measureFanout(subscribers, b.N, 256)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(run.DeliveriesPerSec, "deliveries/s")
			b.ReportMetric(run.DeliveryP99US, "p99-us")
		})
	}
}

// TestEventsBenchRecord writes the BENCH_events.json artifact when
// EVENTS_BENCH_OUT names a path: fanout throughput and delivery quantiles at
// increasing subscriber counts, topping out past the ISSUE's 1k-subscriber
// floor. Skipped in normal test runs — measurement is not a correctness gate.
func TestEventsBenchRecord(t *testing.T) {
	out := os.Getenv("EVENTS_BENCH_OUT")
	if out == "" {
		t.Skip("set EVENTS_BENCH_OUT to record the events fanout benchmark")
	}
	report := struct {
		Suite      string `json:"suite"`
		RecordedAt string `json:"recorded_at"`
		Host       struct {
			GoVersion string `json:"go_version"`
			OS        string `json:"os"`
			Arch      string `json:"arch"`
			CPUs      int    `json:"cpus"`
		} `json:"host"`
		Runs []fanoutRun `json:"runs"`
	}{
		Suite:      "pmware events hub fanout",
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
	}
	report.Host.GoVersion = runtime.Version()
	report.Host.OS = runtime.GOOS
	report.Host.Arch = runtime.GOARCH
	report.Host.CPUs = runtime.NumCPU()

	for _, subscribers := range []int{64, 256, 1024} {
		run, err := measureFanout(subscribers, 2000, 256)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("subs=%d: %.0f deliveries/s, p99 %.0fµs, %d evicted",
			run.Subscribers, run.DeliveriesPerSec, run.DeliveryP99US, run.Evicted)
		report.Runs = append(report.Runs, run)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
