package events

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gsm"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func cell(cid int) world.CellID {
	return world.CellID{MCC: 262, MNC: 1, LAC: 1, CID: cid}
}

// mkTrace builds a one-observation-per-minute trace over the cell ids.
func mkTrace(cids ...int) []trace.GSMObservation {
	obs := make([]trace.GSMObservation, len(cids))
	for i, c := range cids {
		obs[i] = trace.GSMObservation{
			At:   simclock.Epoch.Add(time.Duration(i) * time.Minute),
			Cell: cell(c),
		}
	}
	return obs
}

// genTrace generates a random stay/move/stay/... trace, mirroring the
// generator the pipeline equivalence tests use one package down.
func genTrace(seed int64) []trace.GSMObservation {
	r := rand.New(rand.NewSource(seed))
	var cids []int
	nextCell := 1000
	stays := 1 + r.Intn(5)
	for s := 0; s < stays; s++ {
		setSize := 1 + r.Intn(3)
		set := make([]int, setSize)
		for i := range set {
			nextCell++
			set[i] = nextCell
		}
		for m := 0; m < 15+r.Intn(75); m++ {
			cids = append(cids, set[r.Intn(setSize)])
		}
		for m := 0; m < 10+r.Intn(20); m++ {
			nextCell++
			cids = append(cids, nextCell)
		}
	}
	return mkTrace(cids...)
}

// randomSplit cuts the trace into 1..6 contiguous batches at random
// boundaries (empty batches allowed).
func randomSplit(r *rand.Rand, obs []trace.GSMObservation) [][]trace.GSMObservation {
	parts := 1 + r.Intn(6)
	cuts := make([]int, 0, parts+1)
	cuts = append(cuts, 0)
	for i := 1; i < parts; i++ {
		cuts = append(cuts, r.Intn(len(obs)+1))
	}
	cuts = append(cuts, len(obs))
	sort.Ints(cuts)
	var out [][]trace.GSMObservation
	for i := 1; i < len(cuts); i++ {
		out = append(out, obs[cuts[i-1]:cuts[i]])
	}
	return out
}

// canonicalTransitions serializes the canonical transition fields (Hint is
// excluded by its json:"-" tag) for byte-identical comparison.
func canonicalTransitions(t *testing.T, ts []Transition) string {
	t.Helper()
	if ts == nil {
		ts = []Transition{}
	}
	b, err := json.Marshal(ts)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// streamedPlusPending is the full transition stream the detector implies for
// the trace consumed so far: everything emitted plus the open tail's exit.
func streamedPlusPending(got []Transition, d *Detector) []Transition {
	out := append([]Transition(nil), got...)
	if exit, ok := d.PendingExit(); ok {
		out = append(out, exit)
	}
	return out
}

// TestDetectorMatchesBatch is the PR's equivalence pin: streaming a trace
// through the online detector — over ANY contiguous batch split — yields
// byte-identical canonical transitions to deriving them from a batch
// discovery run, at every batch boundary as well as the end.
func TestDetectorMatchesBatch(t *testing.T) {
	p := gsm.DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := genTrace(seed)
		d := NewDetector(p)
		var streamed []Transition
		consumed := 0
		for _, batch := range randomSplit(r, obs) {
			streamed = append(streamed, d.Feed(batch)...)
			consumed += len(batch)
			want := FromSegments(gsm.Discover(obs[:consumed], p).Segments)
			got := streamedPlusPending(streamed, d)
			if canonicalTransitions(t, got) != canonicalTransitions(t, want) {
				t.Logf("seed %d: transitions diverge at prefix %d:\n got %s\nwant %s",
					seed, consumed, canonicalTransitions(t, got), canonicalTransitions(t, want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDetectorOneByOne feeds a trace one observation at a time — the
// streaming ingest path's worst case — and checks the entry fires the moment
// the open stay crosses MinStay, not at stay close.
func TestDetectorOneByOne(t *testing.T) {
	p := gsm.DefaultParams()
	// 40 minutes on one cell, 15 moving, 40 on another.
	var cids []int
	for i := 0; i < 40; i++ {
		cids = append(cids, 1)
	}
	for i := 0; i < 15; i++ {
		cids = append(cids, 100+i)
	}
	for i := 0; i < 40; i++ {
		cids = append(cids, 2)
	}
	obs := mkTrace(cids...)

	d := NewDetector(p)
	entryAt := -1 // observation index at which the first entry fired
	var all []Transition
	for i := range obs {
		ts := d.Feed(obs[i : i+1])
		for _, tr := range ts {
			if tr.Kind == KindPlaceEntry && entryAt < 0 {
				entryAt = i
				if len(tr.Hint) == 0 {
					t.Errorf("entry at obs %d carries no cell hint", i)
				}
			}
		}
		all = append(all, ts...)
	}
	if entryAt < 0 {
		t.Fatal("no entry emitted")
	}
	if entryAt >= 40 {
		t.Errorf("first entry fired at obs %d — after the stay closed, not online", entryAt)
	}
	want := FromSegments(gsm.Discover(obs, p).Segments)
	got := streamedPlusPending(all, d)
	if canonicalTransitions(t, got) != canonicalTransitions(t, want) {
		t.Errorf("one-by-one stream diverges from batch:\n got %s\nwant %s",
			canonicalTransitions(t, got), canonicalTransitions(t, want))
	}
}

// TestDetectorCatchUp pins the rebuild path: catching up on a prefix and
// feeding the rest emits exactly the transitions a fresh detector emits for
// the suffix — no duplicates from the prefix, nothing lost at the seam.
func TestDetectorCatchUp(t *testing.T) {
	p := gsm.DefaultParams()
	for seed := int64(1); seed <= 15; seed++ {
		obs := genTrace(seed)
		r := rand.New(rand.NewSource(seed))
		cut := r.Intn(len(obs) + 1)

		ref := NewDetector(p)
		refPrefix := ref.Feed(obs[:cut])
		refSuffix := ref.Feed(obs[cut:])
		_ = refPrefix

		rebuilt := NewDetector(p)
		rebuilt.CatchUp(obs[:cut])
		if rebuilt.Len() != cut {
			t.Fatalf("seed %d: Len after CatchUp = %d, want %d", seed, rebuilt.Len(), cut)
		}
		got := rebuilt.Feed(obs[cut:])
		if canonicalTransitions(t, got) != canonicalTransitions(t, refSuffix) {
			t.Errorf("seed %d cut %d: rebuilt suffix diverges:\n got %s\nwant %s",
				seed, cut, canonicalTransitions(t, got), canonicalTransitions(t, refSuffix))
		}
	}
}
