// Package events is the PCI's real-time event subsystem: it turns
// observations appended through the streaming ingest path into place-event
// transitions the moment they become decidable, and fans them out to
// subscribed applications over bounded per-subscriber queues.
//
// The package splits into three layers:
//
//   - Transition detection (detect.go): an online detector over the
//     incremental GCA pipeline. Its output is pinned byte-identical to the
//     transitions derivable from a nightly batch discovery run
//     (TestDetectorMatchesBatch), the same discipline as
//     TestPipelineMatchesBatch one level down.
//   - The fanout hub (hub.go): a single authoritative dispatch loop owning
//     every subscriber queue, with sequence-numbered events, a bounded
//     per-user replay ring for Last-Event-ID resume, and slow-consumer
//     eviction so one stalled reader never blocks the emit path.
//   - The SSE wire (sse.go): the framing shared by the server handler and
//     the client's reconnecting Subscribe loop.
package events

import (
	"slices"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/world"
)

// Event kinds. The strings double as the SSE `event:` field.
const (
	KindPlaceEntry     = "place_entry"
	KindPlaceExit      = "place_exit"
	KindRouteStart     = "route_start"
	KindPredictedVisit = "predicted_next_visit"

	// KindReset is a control event: the server could not satisfy a
	// Last-Event-ID resume from its replay ring, so the subscriber has a
	// gap and should re-pull authoritative state (places, profiles) out of
	// band. Data is the current head sequence number.
	KindReset = "reset"
	// KindEvicted is a control event sent as the final frame before the
	// server closes a slow consumer's stream.
	KindEvicted = "evicted"
)

// Transition is the canonical, deterministic core of an event: exactly the
// part that must be byte-identical between the streaming detector and a
// batch discovery run over the same trace (the PR's equivalence pin).
// Everything enrichable only from mutable server state — matched place ID,
// label, coordinates, predictions — lives on Event instead.
type Transition struct {
	// Kind is KindPlaceEntry, KindPlaceExit, or KindRouteStart.
	Kind string `json:"kind"`
	// At is when the transition happened in trace time: stay start for an
	// entry, stay end for an exit, and previous stay end for a route start.
	At time.Time `json:"at"`
	// Start is the stay's start, set on exits only (pairs the exit with its
	// entry without requiring the consumer to track state).
	Start time.Time `json:"start,omitempty"`
	// Cells is the completed stay's full cell set in canonical order, set on
	// exits only. It is final by construction: a stay's cell set stops
	// growing when the stay closes.
	Cells []world.CellID `json:"cells,omitempty"`

	// Hint is the cell set observed so far when an entry fires. It is
	// explicitly NOT part of the canonical transition — an online entry is
	// emitted mid-stay, so its hint is a prefix of the final cell set and
	// batch derivation cannot reproduce it. Enrichment only.
	Hint []world.CellID `json:"-"`
}

// FromSegments derives the canonical transition stream a batch discovery run
// implies: entry/exit per stay segment, with a route start anchored at the
// previous stay's end between consecutive segments. This is the reference
// the online detector is pinned against.
func FromSegments(segs []gsm.Segment) []Transition {
	ts := make([]Transition, 0, 3*len(segs))
	for i, s := range segs {
		if i > 0 {
			ts = append(ts, Transition{Kind: KindRouteStart, At: segs[i-1].End})
		}
		ts = append(ts, Transition{Kind: KindPlaceEntry, At: s.Start})
		ts = append(ts, Transition{
			Kind:  KindPlaceExit,
			At:    s.End,
			Start: s.Start,
			Cells: SortedCells(s.Cells),
		})
	}
	return ts
}

// SortedCells renders a cell set in canonical (MCC, MNC, LAC, CID) order.
func SortedCells(set map[world.CellID]struct{}) []world.CellID {
	cells := make([]world.CellID, 0, len(set))
	for c := range set {
		cells = append(cells, c)
	}
	slices.SortFunc(cells, CompareCells)
	return cells
}

// CompareCells is the canonical cell ordering used everywhere a cell set is
// serialized.
func CompareCells(a, b world.CellID) int {
	switch {
	case a.MCC != b.MCC:
		return a.MCC - b.MCC
	case a.MNC != b.MNC:
		return a.MNC - b.MNC
	case a.LAC != b.LAC:
		return a.LAC - b.LAC
	default:
		return a.CID - b.CID
	}
}

// Event is the wire shape delivered to subscribers: the canonical transition
// fields plus server-side enrichment and hub bookkeeping. JSON tags are the
// SSE `data:` payload format.
type Event struct {
	// Seq is the per-user sequence number the hub assigns at publish, and
	// the SSE `id:` used for Last-Event-ID resume. 1-based, gapless.
	Seq uint64 `json:"seq"`
	// Type is the event kind.
	Type string `json:"type"`
	// UserID is the trace owner.
	UserID string `json:"user_id"`
	// At / Start mirror Transition.
	At    time.Time `json:"at"`
	Start time.Time `json:"start"`

	// PlaceID is the matching stored place (from the user's last
	// discovery), or -1 when none matches — e.g. a brand-new place before
	// any discovery has run.
	PlaceID int64  `json:"place_id"`
	Label   string `json:"label,omitempty"`
	// Center/AccuracyMeters are the disclosed position, already degraded to
	// the subscriber's clamped granularity by the time they hit the wire.
	Center         geo.LatLng `json:"center"`
	AccuracyMeters float64    `json:"accuracy_m,omitempty"`

	// PredictedAt is set on predicted_next_visit events.
	PredictedAt time.Time `json:"predicted_at"`

	// PublishedUnixNano is the hub's wall-clock publish stamp; subscribers
	// derive delivery latency from it. Excluded from any determinism
	// comparison.
	PublishedUnixNano int64 `json:"published_unix_ns,omitempty"`
}

// Degrade returns a copy of the event with its positional payload clamped to
// the granularity tier, reusing the core privacy model: coordinates snap to
// the tier's disclosure grid and the reported accuracy coarsens to the
// tier's uncertainty. Non-positional fields pass through.
func Degrade(ev Event, g core.Granularity) Event {
	if !g.Valid() || ev.Center.IsZero() {
		return ev
	}
	ev.Center = core.DegradeCoordinates(ev.Center, g)
	if acc := g.AccuracyMeters(); acc > ev.AccuracyMeters {
		ev.AccuracyMeters = acc
	}
	return ev
}

// ToIntent converts a wire event into the core bus intent PMS-side apps
// would have received had the transition been detected locally, bridging the
// cloud fanout onto the in-process Connected Applications Module.
func ToIntent(ev Event) (core.Intent, bool) {
	var action string
	switch ev.Type {
	case KindPlaceEntry:
		action = core.ActionPlaceArrival
	case KindPlaceExit:
		action = core.ActionPlaceDeparture
	case KindRouteStart:
		action = core.ActionRouteStart
	case KindPredictedVisit:
		action = core.ActionPredictedVisit
	default:
		return core.Intent{}, false
	}
	in := core.Intent{Action: action, At: ev.At}
	if ev.Type == KindRouteStart {
		in.Route = &core.RouteInfo{Start: ev.At}
		return in, true
	}
	// "p<N>" is the PMS fusion layer's place id namespace; bridged intents
	// use it so apps see one id space regardless of where detection ran.
	id := ""
	if ev.PlaceID >= 0 {
		id = "p" + strconv.FormatInt(ev.PlaceID, 10)
	}
	in.Place = &core.PlaceInfo{
		ID:             id,
		Label:          ev.Label,
		Center:         ev.Center,
		AccuracyMeters: ev.AccuracyMeters,
	}
	return in, true
}
