package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/simclock"
	"repro/internal/world"
)

func randomObservations(r *rand.Rand, n int) []GSMObservation {
	obs := make([]GSMObservation, n)
	at := simclock.Epoch
	cell := world.CellID{MCC: 262, MNC: 10, LAC: 4000 + r.Intn(100), CID: 30000 + r.Intn(1000)}
	for i := range obs {
		at = at.Add(time.Duration(1+r.Intn(600)) * time.Second)
		if r.Intn(4) == 0 { // oscillate
			cell.CID = 30000 + r.Intn(1000)
			if r.Intn(8) == 0 {
				cell.LAC = 4000 + r.Intn(100)
			}
		}
		obs[i] = GSMObservation{At: at, Cell: cell, SignalDBM: -50 - r.Float64()*60}
	}
	return obs
}

func TestObservationBlockRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	for _, n := range []int{0, 1, 7, 500} {
		obs := randomObservations(r, n)
		var e BinaryEncoder
		AppendObservations(&e, obs)
		d := NewBinaryDecoder(e.Buf)
		got := DecodeObservations(d)
		if d.Err() != nil {
			t.Fatalf("n=%d: decode: %v", n, d.Err())
		}
		if d.Rest() != 0 {
			t.Fatalf("n=%d: %d trailing bytes", n, d.Rest())
		}
		if len(got) != len(obs) {
			t.Fatalf("n=%d: %d != %d observations", n, len(got), len(obs))
		}
		for i := range obs {
			if !got[i].At.Equal(obs[i].At) || got[i].Cell != obs[i].Cell || got[i].SignalDBM != obs[i].SignalDBM {
				t.Fatalf("n=%d: observation %d mismatch: %+v != %+v", n, i, got[i], obs[i])
			}
		}
	}
}

func TestObservationBlockCompactness(t *testing.T) {
	r := rand.New(rand.NewSource(902))
	obs := randomObservations(r, 1000)
	var e BinaryEncoder
	AppendObservations(&e, obs)
	perObs := float64(len(e.Buf)) / float64(len(obs))
	if perObs > 25 {
		t.Errorf("binary observation block too fat: %.1f bytes/obs", perObs)
	}
}

func TestObservationBlockTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(903))
	obs := randomObservations(r, 50)
	var e BinaryEncoder
	AppendObservations(&e, obs)
	// Every strict prefix must fail cleanly, never panic or succeed.
	for cut := 0; cut < len(e.Buf); cut++ {
		d := NewBinaryDecoder(e.Buf[:cut])
		if got := DecodeObservations(d); got != nil && d.Err() == nil {
			t.Fatalf("cut=%d: truncated block decoded %d observations with nil error", cut, len(got))
		}
	}
}

func TestObservationBlockBogusCount(t *testing.T) {
	var e BinaryEncoder
	e.Uvarint(1 << 40) // claims a trillion observations, carries none
	d := NewBinaryDecoder(e.Buf)
	if got := DecodeObservations(d); got != nil || d.Err() == nil {
		t.Fatalf("bogus count: got %d observations, err %v", len(got), d.Err())
	}
}

func TestBinaryBundleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(904))
	valid := true
	orig := &Bundle{
		GSM: randomObservations(r, 120),
		WiFi: []WiFiScan{
			{At: simclock.Epoch, APs: []WiFiReading{{BSSID: "aa:bb", SSID: "net café", RSSIDBM: -61.5}}},
			{At: simclock.Epoch.Add(time.Minute)}, // empty scan
		},
		GPS: []GPSFix{
			{At: simclock.Epoch, Pos: geo.LatLng{Lat: 52.52, Lng: 13.405}, AccuracyMeters: 8, Valid: valid},
			{At: simclock.Epoch.Add(time.Hour), Valid: false},
		},
		Activity: []ActivitySample{
			{At: simclock.Epoch, Moving: true},
			{At: simclock.Epoch.Add(2 * time.Hour), Moving: false},
		},
	}

	var bin bytes.Buffer
	if err := WriteBinaryBundle(&bin, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if len(got.GSM) != len(orig.GSM) {
		t.Fatalf("gsm: %d != %d", len(got.GSM), len(orig.GSM))
	}
	for i := range orig.GSM {
		if !got.GSM[i].At.Equal(orig.GSM[i].At) || got.GSM[i].Cell != orig.GSM[i].Cell ||
			got.GSM[i].SignalDBM != orig.GSM[i].SignalDBM {
			t.Fatalf("gsm %d mismatch", i)
		}
	}
	if len(got.WiFi) != 2 || len(got.WiFi[0].APs) != 1 || got.WiFi[0].APs[0].SSID != "net café" {
		t.Fatalf("wifi mismatch: %+v", got.WiFi)
	}
	if len(got.GPS) != 2 || !got.GPS[0].Valid || got.GPS[1].Valid ||
		got.GPS[0].Pos.Lat != 52.52 || got.GPS[0].Pos.Lng != 13.405 {
		t.Fatalf("gps mismatch: %+v", got.GPS)
	}
	if len(got.Activity) != 2 || !got.Activity[0].Moving || got.Activity[1].Moving {
		t.Fatalf("activity mismatch: %+v", got.Activity)
	}

	// Binary must be meaningfully smaller than JSON lines for the same data.
	var js bytes.Buffer
	if err := WriteBundle(&js, orig); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > js.Len() {
		t.Errorf("binary bundle not compact: %d bytes vs %d JSON", bin.Len(), js.Len())
	}
}

func TestBinaryBundleCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(905))
	orig := &Bundle{GSM: randomObservations(r, 30)}
	var buf bytes.Buffer
	if err := WriteBinaryBundle(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("bit flip fails CRC", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[len(bad)/2] ^= 0x40
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("corrupted stream accepted")
		}
	})
	t.Run("truncation fails cleanly", func(t *testing.T) {
		for _, cut := range []int{3, 9, len(data) / 2, len(data) - 1} {
			if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
				t.Errorf("cut=%d: truncated stream accepted", cut)
			}
		}
	})
	t.Run("header-only stream is a valid empty bundle", func(t *testing.T) {
		got, err := ReadBinary(bytes.NewReader(data[:5]))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.GSM) != 0 {
			t.Error("empty stream produced records")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[0] = 'X'
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[4] = 99
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("future version accepted")
		}
	})
}

func TestReadAutoSniffsFormat(t *testing.T) {
	r := rand.New(rand.NewSource(906))
	orig := &Bundle{GSM: randomObservations(r, 25)}

	var bin, js bytes.Buffer
	if err := WriteBinaryBundle(&bin, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(&js, orig); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"binary": &bin, "json": &js} {
		got, err := ReadAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.GSM) != len(orig.GSM) {
			t.Fatalf("%s: %d != %d", name, len(got.GSM), len(orig.GSM))
		}
	}
}

// TestReadReportsCurrentRecordNumber pins 1-based record numbering in
// trace.Read error messages: the reported number must be the record that
// failed, not its predecessor.
func TestReadReportsCurrentRecordNumber(t *testing.T) {
	good := `{"kind":"gsm","at":"2014-09-01T00:00:00Z","mcc":262,"mnc":10,"lac":1,"cid":2}`
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"malformed first record", `{"kind":`, "record 1:"},
		{"unknown kind first record", `{"kind":"sonar","at":"2014-09-01T00:00:00Z"}`, "record 1:"},
		{"malformed third record", good + "\n" + good + "\n" + `{"kind": 7}`, "record 3:"},
		{"unknown kind third record", good + "\n" + good + "\n" + `{"kind":"sonar"}`, "record 3:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("bad input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestEncoderChainReset(t *testing.T) {
	at := simclock.Epoch.Add(48 * time.Hour)
	var e BinaryEncoder
	e.Time(at)
	e.ResetChain()
	e.Time(at)
	d := NewBinaryDecoder(e.Buf)
	first := d.Time()
	d.ResetChain()
	second := d.Time()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if !first.Equal(at) || !second.Equal(at) {
		t.Fatalf("chain reset broken: %v / %v != %v", first, second, at)
	}
}
