package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/world"
)

// This file implements a JSON-lines codec for sensor traces, so traces can
// be exported from the simulator, archived, and replayed through the
// discovery algorithms offline — the workflow the paper's authors used with
// their collected deployment data.
//
// Each line is one record: {"kind": "...", ...}. Kinds: "gsm", "wifi",
// "gps", "activity".

// Record is the tagged union for one trace line.
type Record struct {
	Kind string    `json:"kind"`
	At   time.Time `json:"at"`

	// gsm
	MCC       int     `json:"mcc,omitempty"`
	MNC       int     `json:"mnc,omitempty"`
	LAC       int     `json:"lac,omitempty"`
	CID       int     `json:"cid,omitempty"`
	SignalDBM float64 `json:"signal_dbm,omitempty"`

	// wifi
	APs []WiFiReading `json:"aps,omitempty"`

	// gps
	Lat            float64 `json:"lat,omitempty"`
	Lng            float64 `json:"lng,omitempty"`
	AccuracyMeters float64 `json:"accuracy_m,omitempty"`
	Valid          *bool   `json:"valid,omitempty"`

	// activity
	Moving *bool `json:"moving,omitempty"`
}

func cellID(rec Record) world.CellID {
	return world.CellID{MCC: rec.MCC, MNC: rec.MNC, LAC: rec.LAC, CID: rec.CID}
}

// Writer streams trace records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// WriteGSM emits one GSM observation.
func (tw *Writer) WriteGSM(o GSMObservation) error {
	return tw.enc.Encode(Record{
		Kind: "gsm", At: o.At,
		MCC: o.Cell.MCC, MNC: o.Cell.MNC, LAC: o.Cell.LAC, CID: o.Cell.CID,
		SignalDBM: o.SignalDBM,
	})
}

// WriteWiFi emits one scan.
func (tw *Writer) WriteWiFi(s WiFiScan) error {
	return tw.enc.Encode(Record{Kind: "wifi", At: s.At, APs: s.APs})
}

// WriteGPS emits one fix.
func (tw *Writer) WriteGPS(f GPSFix) error {
	valid := f.Valid
	return tw.enc.Encode(Record{
		Kind: "gps", At: f.At,
		Lat: f.Pos.Lat, Lng: f.Pos.Lng, AccuracyMeters: f.AccuracyMeters, Valid: &valid,
	})
}

// WriteActivity emits one activity sample.
func (tw *Writer) WriteActivity(a ActivitySample) error {
	moving := a.Moving
	return tw.enc.Encode(Record{Kind: "activity", At: a.At, Moving: &moving})
}

// Flush writes buffered output.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Bundle is a fully parsed trace file, split by sensor.
type Bundle struct {
	GSM      []GSMObservation
	WiFi     []WiFiScan
	GPS      []GPSFix
	Activity []ActivitySample
}

// Read parses a JSON-lines trace stream into a Bundle. Unknown kinds are an
// error (they indicate a version mismatch, not noise).
func Read(r io.Reader) (*Bundle, error) {
	b := &Bundle{}
	dec := json.NewDecoder(bufio.NewReader(r))
	// line is the 1-based number of the record currently being read; both
	// error paths below must report it, not the previous record's number.
	for line := 1; ; line++ {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", line, err)
		}
		switch rec.Kind {
		case "gsm":
			b.GSM = append(b.GSM, GSMObservation{
				At:        rec.At,
				Cell:      cellID(rec),
				SignalDBM: rec.SignalDBM,
			})
		case "wifi":
			b.WiFi = append(b.WiFi, WiFiScan{At: rec.At, APs: rec.APs})
		case "gps":
			fix := GPSFix{At: rec.At, AccuracyMeters: rec.AccuracyMeters}
			fix.Pos.Lat, fix.Pos.Lng = rec.Lat, rec.Lng
			if rec.Valid != nil {
				fix.Valid = *rec.Valid
			}
			b.GPS = append(b.GPS, fix)
		case "activity":
			s := ActivitySample{At: rec.At}
			if rec.Moving != nil {
				s.Moving = *rec.Moving
			}
			b.Activity = append(b.Activity, s)
		default:
			return nil, fmt.Errorf("trace: record %d: unknown kind %q", line, rec.Kind)
		}
	}
	return b, nil
}

// WriteBundle streams an entire bundle, interleaved in time order per
// sensor stream (streams are concatenated; readers that need global order
// should sort).
func WriteBundle(w io.Writer, b *Bundle) error {
	tw := NewWriter(w)
	for _, o := range b.GSM {
		if err := tw.WriteGSM(o); err != nil {
			return err
		}
	}
	for _, s := range b.WiFi {
		if err := tw.WriteWiFi(s); err != nil {
			return err
		}
	}
	for _, f := range b.GPS {
		if err := tw.WriteGPS(f); err != nil {
			return err
		}
	}
	for _, a := range b.Activity {
		if err := tw.WriteActivity(a); err != nil {
			return err
		}
	}
	return tw.Flush()
}
