package trace

// Binary trace codec — the compact counterpart of the JSON-lines codec in
// codec.go, and the primitive layer for the cloud wire format (DESIGN.md
// §14). Two things live here:
//
//  1. BinaryEncoder/BinaryDecoder: append-style varint primitives over a
//     caller-owned []byte, so hot paths can encode into pooled buffers with
//     zero allocation. Timestamps are delta-chained (zigzag varint of the
//     UnixNano difference from the previous Time written through the same
//     encoder), which collapses a periodic trace's ~19-digit nanosecond
//     stamps into 2-5 bytes each.
//
//  2. A framed binary file format for Bundle: magic + version, then one
//     length-prefixed CRC-checked record per observation/scan/fix/sample,
//     reusing the framing idiom of internal/storage's WAL (length, CRC-32
//     IEEE of the payload, payload). Every record is self-contained so a
//     truncated file fails cleanly at a record boundary.
//
// Decoded timestamps are rebuilt with time.Unix(0, ns).UTC(): the binary
// form carries the instant, not the zone. Trace hashing and delta-sync
// cursors depend only on UnixNano, so round-tripping through this codec
// preserves them exactly.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/world"
)

// BinaryVersion is the current binary trace format version, written after
// the magic and checked on read.
const BinaryVersion = 1

// binaryMagic opens every binary trace file.
var binaryMagic = [4]byte{'P', 'M', 'T', 'B'}

// maxBinaryRecord bounds a single framed record; anything larger is treated
// as corruption, mirroring storage.MaxRecordSize.
const maxBinaryRecord = 16 << 20

// ErrTruncated reports binary input that ended mid-value or mid-record.
var ErrTruncated = errors.New("trace: truncated binary data")

// record kind bytes for the framed bundle format.
const (
	binKindGSM      byte = 1
	binKindWiFi     byte = 2
	binKindGPS      byte = 3
	binKindActivity byte = 4
)

// BinaryEncoder appends varint-packed primitives to Buf. The zero value is
// ready to use; set Buf to a recycled slice to encode without allocating.
type BinaryEncoder struct {
	Buf []byte

	lastNs int64 // delta chain for Time
}

// Reset points the encoder at buf (truncated to zero length) and restarts
// the timestamp delta chain.
func (e *BinaryEncoder) Reset(buf []byte) {
	e.Buf = buf[:0]
	e.lastNs = 0
}

// ResetChain restarts the timestamp delta chain without touching Buf. Call
// it at frame boundaries so each frame decodes independently.
func (e *BinaryEncoder) ResetChain() { e.lastNs = 0 }

// Byte appends one raw byte.
func (e *BinaryEncoder) Byte(b byte) { e.Buf = append(e.Buf, b) }

// Uvarint appends v in LEB128.
func (e *BinaryEncoder) Uvarint(v uint64) { e.Buf = binary.AppendUvarint(e.Buf, v) }

// Varint appends v zigzag-encoded.
func (e *BinaryEncoder) Varint(v int64) { e.Buf = binary.AppendVarint(e.Buf, v) }

// Fixed32 appends v as 4 little-endian bytes.
func (e *BinaryEncoder) Fixed32(v uint32) { e.Buf = binary.LittleEndian.AppendUint32(e.Buf, v) }

// Fixed64 appends v as 8 little-endian bytes.
func (e *BinaryEncoder) Fixed64(v uint64) { e.Buf = binary.LittleEndian.AppendUint64(e.Buf, v) }

// Float64 appends the IEEE-754 bit pattern of f as a Fixed64.
func (e *BinaryEncoder) Float64(f float64) { e.Fixed64(math.Float64bits(f)) }

// Bool appends 1 or 0.
func (e *BinaryEncoder) Bool(b bool) {
	if b {
		e.Buf = append(e.Buf, 1)
	} else {
		e.Buf = append(e.Buf, 0)
	}
}

// String appends a uvarint length followed by the raw bytes.
func (e *BinaryEncoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.Buf = append(e.Buf, s...)
}

// Time appends t as a zigzag varint delta of UnixNano from the previous
// Time written (absolute on the first write after Reset/ResetChain).
func (e *BinaryEncoder) Time(t time.Time) {
	ns := t.UnixNano()
	e.Varint(ns - e.lastNs)
	e.lastNs = ns
}

// BinaryDecoder consumes values appended by BinaryEncoder. Errors are
// sticky: after the first failure every read returns the zero value and
// Err reports the cause, so call sites can decode a whole message and check
// once at the end.
type BinaryDecoder struct {
	buf    []byte
	off    int
	lastNs int64
	err    error
}

// NewBinaryDecoder returns a decoder over b.
func NewBinaryDecoder(b []byte) *BinaryDecoder { return &BinaryDecoder{buf: b} }

// Err returns the first decode failure, or nil.
func (d *BinaryDecoder) Err() error { return d.err }

// Rest returns the number of unconsumed bytes.
func (d *BinaryDecoder) Rest() int { return len(d.buf) - d.off }

// ResetChain restarts the timestamp delta chain (frame boundary).
func (d *BinaryDecoder) ResetChain() { d.lastNs = 0 }

func (d *BinaryDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Byte reads one raw byte.
func (d *BinaryDecoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Uvarint reads a LEB128 value.
func (d *BinaryDecoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(errors.New("trace: uvarint overflow"))
		}
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag value.
func (d *BinaryDecoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(errors.New("trace: varint overflow"))
		}
		return 0
	}
	d.off += n
	return v
}

// Fixed32 reads 4 little-endian bytes.
func (d *BinaryDecoder) Fixed32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Rest() < 4 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Fixed64 reads 8 little-endian bytes.
func (d *BinaryDecoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Rest() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Float64 reads an IEEE-754 bit pattern.
func (d *BinaryDecoder) Float64() float64 { return math.Float64frombits(d.Fixed64()) }

// Bool reads a 1/0 byte; anything else is a format error.
func (d *BinaryDecoder) Bool() bool {
	switch b := d.Byte(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("trace: bad bool byte 0x%02x", b))
		return false
	}
}

// String reads a length-prefixed string.
func (d *BinaryDecoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Rest()) {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Time reads a delta-chained timestamp; the result is in UTC.
func (d *BinaryDecoder) Time() time.Time {
	ns := d.lastNs + d.Varint()
	if d.err != nil {
		return time.Time{}
	}
	d.lastNs = ns
	return time.Unix(0, ns).UTC()
}

// AppendObservations encodes a GSM observation block: a uvarint count, then
// per observation a delta-chained timestamp, zigzag deltas of the four cell
// fields against the previous observation's cell (a stationary handset
// costs 4 zero bytes per reading), and the fixed-8-byte signal. The block
// shares e's timestamp chain, so decode blocks in write order or reset the
// chain per block.
func AppendObservations(e *BinaryEncoder, obs []GSMObservation) {
	e.Uvarint(uint64(len(obs)))
	var prev world.CellID
	for i := range obs {
		o := &obs[i]
		e.Time(o.At)
		e.Varint(int64(o.Cell.MCC - prev.MCC))
		e.Varint(int64(o.Cell.MNC - prev.MNC))
		e.Varint(int64(o.Cell.LAC - prev.LAC))
		e.Varint(int64(o.Cell.CID - prev.CID))
		e.Float64(o.SignalDBM)
		prev = o.Cell
	}
}

// DecodeObservations decodes one observation block. An empty block decodes
// to nil. On malformed input it returns nil and leaves the error on d.
func DecodeObservations(d *BinaryDecoder) []GSMObservation {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	// The count is attacker-controlled; size the initial allocation by what
	// the remaining bytes could plausibly hold (>= 14 bytes per observation)
	// and let append grow it if the data is real.
	capHint := min(int(n), d.Rest()/14+1)
	out := make([]GSMObservation, 0, capHint)
	var prev world.CellID
	for i := uint64(0); i < n; i++ {
		var o GSMObservation
		o.At = d.Time()
		o.Cell.MCC = prev.MCC + int(d.Varint())
		o.Cell.MNC = prev.MNC + int(d.Varint())
		o.Cell.LAC = prev.LAC + int(d.Varint())
		o.Cell.CID = prev.CID + int(d.Varint())
		o.SignalDBM = d.Float64()
		if d.err != nil {
			return nil
		}
		prev = o.Cell
		out = append(out, o)
	}
	return out
}

// BinaryWriter streams trace records in the framed binary format. It mirrors
// Writer's API so generators can target either codec.
type BinaryWriter struct {
	w           *bufio.Writer
	enc         BinaryEncoder
	head        [binary.MaxVarintLen64 + 4]byte
	wroteHeader bool
}

// NewBinaryWriter wraps w. The magic/version header is written lazily with
// the first record.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

func (bw *BinaryWriter) record(fill func(e *BinaryEncoder)) error {
	if !bw.wroteHeader {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		if err := bw.w.WriteByte(BinaryVersion); err != nil {
			return err
		}
		bw.wroteHeader = true
	}
	bw.enc.Reset(bw.enc.Buf)
	fill(&bw.enc)
	payload := bw.enc.Buf
	n := binary.PutUvarint(bw.head[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(bw.head[n:], crc32.ChecksumIEEE(payload))
	if _, err := bw.w.Write(bw.head[:n+4]); err != nil {
		return err
	}
	_, err := bw.w.Write(payload)
	return err
}

// WriteGSM emits one GSM observation record.
func (bw *BinaryWriter) WriteGSM(o GSMObservation) error {
	return bw.record(func(e *BinaryEncoder) {
		e.Byte(binKindGSM)
		e.Time(o.At)
		e.Varint(int64(o.Cell.MCC))
		e.Varint(int64(o.Cell.MNC))
		e.Varint(int64(o.Cell.LAC))
		e.Varint(int64(o.Cell.CID))
		e.Float64(o.SignalDBM)
	})
}

// WriteWiFi emits one scan record.
func (bw *BinaryWriter) WriteWiFi(s WiFiScan) error {
	return bw.record(func(e *BinaryEncoder) {
		e.Byte(binKindWiFi)
		e.Time(s.At)
		e.Uvarint(uint64(len(s.APs)))
		for _, ap := range s.APs {
			e.String(ap.BSSID)
			e.String(ap.SSID)
			e.Float64(ap.RSSIDBM)
		}
	})
}

// WriteGPS emits one fix record.
func (bw *BinaryWriter) WriteGPS(f GPSFix) error {
	return bw.record(func(e *BinaryEncoder) {
		e.Byte(binKindGPS)
		e.Time(f.At)
		e.Float64(f.Pos.Lat)
		e.Float64(f.Pos.Lng)
		e.Float64(f.AccuracyMeters)
		e.Bool(f.Valid)
	})
}

// WriteActivity emits one activity-sample record.
func (bw *BinaryWriter) WriteActivity(a ActivitySample) error {
	return bw.record(func(e *BinaryEncoder) {
		e.Byte(binKindActivity)
		e.Time(a.At)
		e.Bool(a.Moving)
	})
}

// Flush writes buffered output (including the header, if no record was
// ever written).
func (bw *BinaryWriter) Flush() error {
	if !bw.wroteHeader {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		if err := bw.w.WriteByte(BinaryVersion); err != nil {
			return err
		}
		bw.wroteHeader = true
	}
	return bw.w.Flush()
}

// WriteBinaryBundle streams an entire bundle in the binary format, in the
// same per-sensor stream order as WriteBundle.
func WriteBinaryBundle(w io.Writer, b *Bundle) error {
	bw := NewBinaryWriter(w)
	for _, o := range b.GSM {
		if err := bw.WriteGSM(o); err != nil {
			return err
		}
	}
	for _, s := range b.WiFi {
		if err := bw.WriteWiFi(s); err != nil {
			return err
		}
	}
	for _, f := range b.GPS {
		if err := bw.WriteGPS(f); err != nil {
			return err
		}
	}
	for _, a := range b.Activity {
		if err := bw.WriteActivity(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a framed binary trace stream into a Bundle. Unknown
// record kinds are an error (version mismatch, not noise), as are CRC
// mismatches and truncated records.
func ReadBinary(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	var head [5]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", errors.Join(ErrTruncated, err))
	}
	if [4]byte(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if head[4] != BinaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", head[4])
	}

	b := &Bundle{}
	var payload []byte
	for rec := 1; ; rec++ {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return b, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", rec, ErrTruncated)
		}
		if size > maxBinaryRecord {
			return nil, fmt.Errorf("trace: record %d: size %d exceeds limit", rec, size)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", rec, ErrTruncated)
		}
		if uint64(cap(payload)) < size {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", rec, ErrTruncated)
		}
		if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(crcb[:]) {
			return nil, fmt.Errorf("trace: record %d: CRC mismatch", rec)
		}
		if err := decodeBinaryRecord(payload, b); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", rec, err)
		}
	}
}

func decodeBinaryRecord(payload []byte, b *Bundle) error {
	d := NewBinaryDecoder(payload)
	kind := d.Byte()
	at := d.Time()
	switch kind {
	case binKindGSM:
		var o GSMObservation
		o.At = at
		o.Cell.MCC = int(d.Varint())
		o.Cell.MNC = int(d.Varint())
		o.Cell.LAC = int(d.Varint())
		o.Cell.CID = int(d.Varint())
		o.SignalDBM = d.Float64()
		if d.err == nil {
			b.GSM = append(b.GSM, o)
		}
	case binKindWiFi:
		s := WiFiScan{At: at}
		n := d.Uvarint()
		for i := uint64(0); i < n && d.err == nil; i++ {
			var ap WiFiReading
			ap.BSSID = d.String()
			ap.SSID = d.String()
			ap.RSSIDBM = d.Float64()
			if d.err == nil {
				s.APs = append(s.APs, ap)
			}
		}
		if d.err == nil {
			b.WiFi = append(b.WiFi, s)
		}
	case binKindGPS:
		f := GPSFix{At: at}
		f.Pos.Lat = d.Float64()
		f.Pos.Lng = d.Float64()
		f.AccuracyMeters = d.Float64()
		f.Valid = d.Bool()
		if d.err == nil {
			b.GPS = append(b.GPS, f)
		}
	case binKindActivity:
		a := ActivitySample{At: at}
		a.Moving = d.Bool()
		if d.err == nil {
			b.Activity = append(b.Activity, a)
		}
	default:
		if d.err == nil {
			return fmt.Errorf("unknown kind 0x%02x", kind)
		}
	}
	return d.Err()
}

// ReadAuto sniffs the stream and dispatches to ReadBinary when it opens with
// the binary magic, Read (JSON lines) otherwise.
func ReadAuto(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && [4]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
