// Package trace models the phone's sensors. Given an agent's ground-truth
// itinerary and the synthetic world, it produces the observation streams the
// radios on a real handset would produce:
//
//   - GSM serving-cell observations, including the "oscillating effect" —
//     Cell-ID changes while the user is stationary, caused by signal fading,
//     network load, and 2G/3G inter-network handoff (paper Section 2.2.2);
//   - WiFi scans with distance-dependent RSSI and probabilistic dropout;
//   - GPS fixes with noise, degraded or denied indoors;
//   - accelerometer-derived activity (moving/stationary) with error;
//   - Bluetooth sightings of nearby peers.
//
// All randomness comes from the *rand.Rand supplied at construction, so
// traces are reproducible.
package trace

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/world"
)

// GSMObservation is one serving-cell reading.
type GSMObservation struct {
	At        time.Time
	Cell      world.CellID
	SignalDBM float64
}

// WiFiReading is one AP heard during a scan.
type WiFiReading struct {
	BSSID   string
	SSID    string
	RSSIDBM float64
}

// WiFiScan is the result of one WiFi scan.
type WiFiScan struct {
	At  time.Time
	APs []WiFiReading
}

// BSSIDs returns the set of BSSIDs heard, in scan order.
func (s WiFiScan) BSSIDs() []string {
	out := make([]string, len(s.APs))
	for i, ap := range s.APs {
		out[i] = ap.BSSID
	}
	return out
}

// GPSFix is one GPS sample. When Valid is false the receiver failed to
// acquire (deep indoors); Pos and Accuracy are then meaningless.
type GPSFix struct {
	At             time.Time
	Pos            geo.LatLng
	AccuracyMeters float64
	Valid          bool
}

// ActivitySample is one accelerometer-classifier output.
type ActivitySample struct {
	At     time.Time
	Moving bool
}

// Config tunes the sensor models. Defaults reflect a mid-2014 handset in a
// dense urban network.
type Config struct {
	// MNC selects the operator the SIM is subscribed to.
	MNC int
	// ShadowSigmaDB is the per-sample shadow-fading standard deviation; it
	// is the main driver of cell oscillation.
	ShadowSigmaDB float64
	// HysteresisDB is the camping hysteresis: a neighbour must beat the
	// serving cell by this margin to trigger reselection.
	HysteresisDB float64
	// InterNetworkHandoffProb is the chance per sample of a forced 2G<->3G
	// layer flip (network-load handoff).
	InterNetworkHandoffProb float64
	// WiFiDropout is the probability that an in-range AP at the edge of
	// coverage is missed by a scan.
	WiFiDropout float64
	// GPSOutdoorAccuracyM / GPSIndoorAccuracyM are 1-sigma fix errors.
	GPSOutdoorAccuracyM float64
	GPSIndoorAccuracyM  float64
	// GPSIndoorDenialProb is the chance an indoor fix fails entirely.
	GPSIndoorDenialProb float64
	// ActivityErrorProb is the accelerometer classifier error rate.
	ActivityErrorProb float64
	// BluetoothRangeM is peer-discovery range.
	BluetoothRangeM float64
}

// DefaultConfig returns sensible sensor parameters.
func DefaultConfig() Config {
	return Config{
		MNC:                     10,
		ShadowSigmaDB:           6.0,
		HysteresisDB:            4.0,
		InterNetworkHandoffProb: 0.02,
		WiFiDropout:             0.25,
		GPSOutdoorAccuracyM:     8,
		GPSIndoorAccuracyM:      35,
		GPSIndoorDenialProb:     0.25,
		ActivityErrorProb:       0.05,
		BluetoothRangeM:         12,
	}
}

// Sensors simulates the handset radios for one agent. It is stateful (the
// modem camps on a serving cell) and not safe for concurrent use.
type Sensors struct {
	w   *world.World
	it  *mobility.Itinerary
	cfg Config

	// Each radio draws from its own stream (derived from the construction
	// RNG), so duty-cycling one interface more or less aggressively does not
	// perturb another interface's noise — a prerequisite for apples-to-
	// apples sensing ablations.
	gsmRand  *rand.Rand
	wifiRand *rand.Rand
	gpsRand  *rand.Rand
	actRand  *rand.Rand

	serving   *world.CellTower
	layerPref world.RadioLayer
	towerBias map[world.CellID]float64 // stable per-tower installation bias
}

// NewSensors builds a sensor bundle for the given agent itinerary.
func NewSensors(w *world.World, it *mobility.Itinerary, cfg Config, r *rand.Rand) *Sensors {
	return &Sensors{
		w:         w,
		it:        it,
		cfg:       cfg,
		gsmRand:   rand.New(rand.NewSource(r.Int63())),
		wifiRand:  rand.New(rand.NewSource(r.Int63())),
		gpsRand:   rand.New(rand.NewSource(r.Int63())),
		actRand:   rand.New(rand.NewSource(r.Int63())),
		layerPref: world.Layer2G,
		towerBias: make(map[world.CellID]float64),
	}
}

// pathLossDBM returns the modelled received power at distance d meters
// (log-distance path loss, reference -40 dBm at 10 m, exponent 3.5).
func pathLossDBM(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return -40 - 35*math.Log10(d/10)
}

func (s *Sensors) bias(id world.CellID) float64 {
	if b, ok := s.towerBias[id]; ok {
		return b
	}
	b := (s.gsmRand.Float64()*2 - 1) * 3 // ±3 dB installation variance
	s.towerBias[id] = b
	return b
}

// SampleGSM returns the serving-cell observation at time t. Cell selection
// uses strongest-first camping with hysteresis; shadow fading noise makes the
// winner flip among nearby cells while stationary (the oscillating effect),
// and occasional forced layer flips model 2G/3G handoffs.
func (s *Sensors) SampleGSM(t time.Time) GSMObservation {
	pos := s.it.PositionAt(t)

	// Forced inter-network handoff.
	if s.gsmRand.Float64() < s.cfg.InterNetworkHandoffProb {
		if s.layerPref == world.Layer2G {
			s.layerPref = world.Layer3G
		} else {
			s.layerPref = world.Layer2G
		}
	}

	type cand struct {
		t    *world.CellTower
		rssi float64
	}
	var best, bestAny *cand
	for _, tw := range s.w.TowersInRange(pos) {
		if tw.ID.MNC != s.cfg.MNC {
			continue
		}
		rssi := pathLossDBM(geo.Distance(tw.Pos, pos)) +
			s.bias(tw.ID) +
			s.gsmRand.NormFloat64()*s.cfg.ShadowSigmaDB
		c := &cand{tw, rssi}
		if bestAny == nil || rssi > bestAny.rssi {
			bestAny = c
		}
		if tw.Layer == s.layerPref && (best == nil || rssi > best.rssi) {
			best = c
		}
	}
	if best == nil {
		best = bestAny
	}
	if best == nil {
		// No coverage (should not happen inside the world bounds); keep the
		// previous serving cell as a stale reading.
		if s.serving != nil {
			return GSMObservation{At: t, Cell: s.serving.ID, SignalDBM: -110}
		}
		return GSMObservation{At: t, SignalDBM: -113}
	}

	// Hysteresis: stick to the serving cell unless the candidate is clearly
	// stronger.
	if s.serving != nil && s.serving != best.t {
		servD := geo.Distance(s.serving.Pos, pos)
		if servD <= s.serving.RangeMeters {
			servRSSI := pathLossDBM(servD) + s.bias(s.serving.ID) +
				s.gsmRand.NormFloat64()*s.cfg.ShadowSigmaDB
			if servRSSI+s.cfg.HysteresisDB > best.rssi {
				return GSMObservation{At: t, Cell: s.serving.ID, SignalDBM: servRSSI}
			}
		}
	}
	s.serving = best.t
	return GSMObservation{At: t, Cell: best.t.ID, SignalDBM: best.rssi}
}

// SampleWiFi performs one WiFi scan at time t. Edge-of-coverage APs drop out
// probabilistically, so consecutive scans at the same spot differ — the
// variability SensLoc's Tanimoto matching is built to absorb.
func (s *Sensors) SampleWiFi(t time.Time) WiFiScan {
	pos := s.it.PositionAt(t)
	scan := WiFiScan{At: t}
	for _, ap := range s.w.APsInRange(pos) {
		d := geo.Distance(ap.Pos, pos)
		frac := d / ap.RangeMeters // 0 near, 1 at edge
		// Dropout grows quadratically toward the edge.
		if s.wifiRand.Float64() < s.cfg.WiFiDropout*frac*frac*4 {
			continue
		}
		rssi := pathLossDBM(d) + s.wifiRand.NormFloat64()*3
		if rssi < -95 {
			continue
		}
		scan.APs = append(scan.APs, WiFiReading{BSSID: ap.BSSID, SSID: ap.SSID, RSSIDBM: rssi})
	}
	return scan
}

// SampleGPS attempts a GPS fix at time t. Indoors (dwelling at a venue) the
// fix may fail or be heavily degraded.
func (s *Sensors) SampleGPS(t time.Time) GPSFix {
	pos := s.it.PositionAt(t)
	indoors := s.it.VenueAt(t) != nil
	acc := s.cfg.GPSOutdoorAccuracyM
	if indoors {
		if s.gpsRand.Float64() < s.cfg.GPSIndoorDenialProb {
			return GPSFix{At: t, Valid: false}
		}
		acc = s.cfg.GPSIndoorAccuracyM
	}
	noisy := geo.Offset(pos, s.gpsRand.Float64()*360, math.Abs(s.gpsRand.NormFloat64())*acc)
	return GPSFix{At: t, Pos: noisy, AccuracyMeters: acc, Valid: true}
}

// SampleActivity returns the accelerometer classifier output at time t.
func (s *Sensors) SampleActivity(t time.Time) ActivitySample {
	moving := s.it.Moving(t)
	if s.actRand.Float64() < s.cfg.ActivityErrorProb {
		moving = !moving
	}
	return ActivitySample{At: t, Moving: moving}
}

// PositionFunc resolves a peer's position at a time.
type PositionFunc func(time.Time) geo.LatLng

// SampleBluetooth returns the IDs of peers discoverable at time t: those
// within BluetoothRangeM whose radios are on. Peers maps peer ID to a
// position function; the owning agent must not be in the map.
func (s *Sensors) SampleBluetooth(t time.Time, peers map[string]PositionFunc) []string {
	pos := s.it.PositionAt(t)
	var out []string
	for id, pf := range peers {
		if geo.Distance(pos, pf(t)) <= s.cfg.BluetoothRangeM {
			out = append(out, id)
		}
	}
	return out
}
