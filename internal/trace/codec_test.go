package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/world"
)

func TestCodecRoundTrip(t *testing.T) {
	f := newFixture(t, 71, 1)
	s := newSensors(f, 72)
	end := f.it.Start.Add(3 * time.Hour)

	orig := &Bundle{
		GSM:  s.CollectGSM(f.it.Start, end, time.Minute),
		WiFi: s.CollectWiFi(f.it.Start, end, 5*time.Minute),
		GPS:  s.CollectGPS(f.it.Start, end, 5*time.Minute),
	}
	for ts := f.it.Start; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		orig.Activity = append(orig.Activity, s.SampleActivity(ts))
	}

	var buf bytes.Buffer
	if err := WriteBundle(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.GSM) != len(orig.GSM) {
		t.Fatalf("gsm: %d != %d", len(got.GSM), len(orig.GSM))
	}
	for i := range orig.GSM {
		if got.GSM[i].Cell != orig.GSM[i].Cell || !got.GSM[i].At.Equal(orig.GSM[i].At) {
			t.Fatalf("gsm record %d mismatch", i)
		}
	}
	if len(got.WiFi) != len(orig.WiFi) {
		t.Fatalf("wifi: %d != %d", len(got.WiFi), len(orig.WiFi))
	}
	for i := range orig.WiFi {
		if len(got.WiFi[i].APs) != len(orig.WiFi[i].APs) {
			t.Fatalf("wifi scan %d APs mismatch", i)
		}
	}
	if len(got.GPS) != len(orig.GPS) {
		t.Fatalf("gps: %d != %d", len(got.GPS), len(orig.GPS))
	}
	for i := range orig.GPS {
		if geo.Distance(got.GPS[i].Pos, orig.GPS[i].Pos) > 0.001 || got.GPS[i].Valid != orig.GPS[i].Valid {
			t.Fatalf("gps record %d mismatch", i)
		}
	}
	if len(got.Activity) != len(orig.Activity) {
		t.Fatalf("activity: %d != %d", len(got.Activity), len(orig.Activity))
	}
	for i := range orig.Activity {
		if got.Activity[i].Moving != orig.Activity[i].Moving {
			t.Fatalf("activity record %d mismatch", i)
		}
	}
}

func TestReadRejectsUnknownKind(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"kind":"sonar","at":"2014-09-01T00:00:00Z"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"kind":`)); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	b, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.GSM)+len(b.WiFi)+len(b.GPS)+len(b.Activity) != 0 {
		t.Error("empty input produced records")
	}
}

func TestGPSInvalidFixSurvivesRoundTrip(t *testing.T) {
	orig := &Bundle{GPS: []GPSFix{{At: simclock.Epoch, Valid: false}}}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.GPS) != 1 || got.GPS[0].Valid {
		t.Error("invalid fix lost")
	}
}

// TestReplayEquivalence verifies the core workflow: discovery over a
// round-tripped trace produces the same places as over the live trace.
func TestReplayEquivalence(t *testing.T) {
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(81))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 2, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(82)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSensors(w, it, DefaultConfig(), rand.New(rand.NewSource(83)))
	live := s.CollectGSM(it.Start, it.End, time.Minute)

	var buf bytes.Buffer
	if err := WriteBundle(&buf, &Bundle{GSM: live}); err != nil {
		t.Fatal(err)
	}
	replayed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.GSM) != len(live) {
		t.Fatal("replay lost observations")
	}
	for i := range live {
		if replayed.GSM[i].Cell != live[i].Cell {
			t.Fatal("replay changed an observation")
		}
	}
}
