package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/world"
)

type fixture struct {
	w  *world.World
	a  *mobility.Agent
	it *mobility.Itinerary
}

func newFixture(t *testing.T, seed int64, days int) *fixture {
	t.Helper()
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(seed))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 200, 1800), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 45, 2600), true, cfg, r)
	a := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			a.Haunts = append(a.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(a, w, simclock.Epoch, days, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("BuildItinerary: %v", err)
	}
	return &fixture{w: w, a: a, it: it}
}

func newSensors(f *fixture, seed int64) *Sensors {
	return NewSensors(f.w, f.it, DefaultConfig(), rand.New(rand.NewSource(seed)))
}

func TestGSMAlwaysServed(t *testing.T) {
	f := newFixture(t, 1, 2)
	s := newSensors(f, 2)
	obs := s.CollectGSM(f.it.Start, f.it.End, time.Minute)
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	for _, o := range obs {
		if o.Cell == (world.CellID{}) {
			t.Fatalf("unserved observation at %v", o.At)
		}
		if o.Cell.MNC != DefaultConfig().MNC {
			t.Fatalf("served by foreign operator MNC %d", o.Cell.MNC)
		}
	}
}

func TestGSMOscillationWhileStationary(t *testing.T) {
	// A stationary night at home must still show cell transitions — the
	// oscillating effect GCA exists to absorb.
	f := newFixture(t, 3, 1)
	s := newSensors(f, 4)
	night0 := simclock.Epoch
	night1 := simclock.Epoch.Add(6 * time.Hour)
	obs := s.CollectGSM(night0, night1, time.Minute)

	transitions := 0
	distinct := map[world.CellID]bool{}
	for i, o := range obs {
		distinct[o.Cell] = true
		if i > 0 && obs[i-1].Cell != o.Cell {
			transitions++
		}
	}
	if len(distinct) < 2 {
		t.Error("no oscillation: a single cell served the whole night")
	}
	if transitions == 0 {
		t.Error("no cell transitions while stationary")
	}
	// But oscillation must be bounded: the phone should not visit dozens of
	// cells from one spot.
	if len(distinct) > 12 {
		t.Errorf("stationary night saw %d distinct cells; oscillation too wild", len(distinct))
	}
}

func TestGSMHysteresisLimitsChurn(t *testing.T) {
	f := newFixture(t, 5, 1)
	cfg := DefaultConfig()

	churn := func(hysteresis float64) int {
		cfg.HysteresisDB = hysteresis
		s := NewSensors(f.w, f.it, cfg, rand.New(rand.NewSource(6)))
		obs := s.CollectGSM(simclock.Epoch, simclock.Epoch.Add(4*time.Hour), time.Minute)
		n := 0
		for i := 1; i < len(obs); i++ {
			if obs[i].Cell != obs[i-1].Cell {
				n++
			}
		}
		return n
	}
	if noHyst, withHyst := churn(0), churn(8); withHyst >= noHyst {
		t.Errorf("hysteresis did not reduce churn: %d vs %d", withHyst, noHyst)
	}
}

func TestGSMMovingChangesCells(t *testing.T) {
	f := newFixture(t, 7, 2)
	s := newSensors(f, 8)
	// Sample across the first full day: commuting must traverse cells that
	// the home location never sees.
	obs := s.CollectGSM(simclock.Epoch, simclock.Epoch.Add(24*time.Hour), time.Minute)
	cells := DistinctCells(obs)
	if len(cells) < 4 {
		t.Errorf("a commuting day saw only %d distinct cells", len(cells))
	}
}

func TestWiFiScanAtWiFiVenue(t *testing.T) {
	f := newFixture(t, 9, 1)
	s := newSensors(f, 10)
	// 3 AM: at home, which has WiFi.
	at := simclock.Epoch.Add(3 * time.Hour)
	heardHome := false
	for i := 0; i < 10; i++ {
		scan := s.SampleWiFi(at.Add(time.Duration(i) * time.Minute))
		for _, ap := range scan.APs {
			if got := f.w.APByBSSID(ap.BSSID); got != nil && got.VenueID == "home" {
				heardHome = true
			}
			if ap.RSSIDBM > -20 || ap.RSSIDBM < -95 {
				t.Errorf("implausible RSSI %.1f", ap.RSSIDBM)
			}
		}
	}
	if !heardHome {
		t.Error("ten scans at home never heard the home AP")
	}
}

func TestWiFiScansVary(t *testing.T) {
	f := newFixture(t, 11, 1)
	s := newSensors(f, 12)
	at := simclock.Epoch.Add(2 * time.Hour)
	sizes := map[int]bool{}
	for i := 0; i < 30; i++ {
		scan := s.SampleWiFi(at)
		sizes[len(scan.APs)] = true
	}
	if len(sizes) < 2 {
		t.Error("30 scans at the same spot returned identical AP counts; dropout model inert")
	}
}

func TestGPSOutdoorAccuracy(t *testing.T) {
	f := newFixture(t, 13, 2)
	s := newSensors(f, 14)
	// Find a trip and sample mid-trip (outdoors).
	if len(f.it.Trips) == 0 {
		t.Fatal("no trips")
	}
	tr := f.it.Trips[0]
	mid := tr.Start.Add(tr.Duration() / 2)
	truth := f.it.PositionAt(mid)
	var errs []float64
	for i := 0; i < 100; i++ {
		fix := s.SampleGPS(mid)
		if !fix.Valid {
			t.Fatal("outdoor fix failed")
		}
		errs = append(errs, geo.Distance(fix.Pos, truth))
	}
	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	if mean > 3*DefaultConfig().GPSOutdoorAccuracyM {
		t.Errorf("mean outdoor GPS error %.1f m too large", mean)
	}
}

func TestGPSIndoorDegraded(t *testing.T) {
	f := newFixture(t, 15, 1)
	s := newSensors(f, 16)
	at := simclock.Epoch.Add(3 * time.Hour) // home, indoors
	denied := 0
	var worst float64
	for i := 0; i < 200; i++ {
		fix := s.SampleGPS(at)
		if !fix.Valid {
			denied++
			continue
		}
		if fix.AccuracyMeters != DefaultConfig().GPSIndoorAccuracyM {
			t.Fatalf("indoor accuracy = %v", fix.AccuracyMeters)
		}
		if e := geo.Distance(fix.Pos, f.it.PositionAt(at)); e > worst {
			worst = e
		}
	}
	if denied == 0 {
		t.Error("no indoor GPS denials in 200 samples at 25% denial prob")
	}
	if denied == 200 {
		t.Error("all indoor fixes denied")
	}
	if worst < DefaultConfig().GPSOutdoorAccuracyM {
		t.Error("indoor fixes suspiciously precise")
	}
}

func TestActivityTracksMotionWithBoundedError(t *testing.T) {
	f := newFixture(t, 17, 2)
	s := newSensors(f, 18)
	total, wrong := 0, 0
	for ts := f.it.Start; ts.Before(f.it.End); ts = ts.Add(time.Minute) {
		got := s.SampleActivity(ts)
		if got.Moving != f.it.Moving(ts) {
			wrong++
		}
		total++
	}
	rate := float64(wrong) / float64(total)
	if rate < 0.01 || rate > 0.10 {
		t.Errorf("activity error rate %.3f outside [0.01, 0.10]", rate)
	}
}

func TestBluetoothProximity(t *testing.T) {
	f := newFixture(t, 19, 1)
	s := newSensors(f, 20)
	at := simclock.Epoch.Add(3 * time.Hour)
	myPos := f.it.PositionAt(at)

	near := func(time.Time) geo.LatLng { return geo.Offset(myPos, 90, 5) }
	far := func(time.Time) geo.LatLng { return geo.Offset(myPos, 90, 500) }
	got := s.SampleBluetooth(at, map[string]PositionFunc{"near": near, "far": far})
	if len(got) != 1 || got[0] != "near" {
		t.Errorf("SampleBluetooth = %v, want [near]", got)
	}
}

func TestCollectGPSFiltersInvalid(t *testing.T) {
	f := newFixture(t, 21, 1)
	s := newSensors(f, 22)
	fixes := s.CollectGPS(simclock.Epoch, simclock.Epoch.Add(4*time.Hour), time.Minute)
	for _, fx := range fixes {
		if !fx.Valid {
			t.Fatal("CollectGPS returned invalid fix")
		}
	}
	if len(fixes) == 240 {
		t.Error("expected some denied indoor fixes to be dropped")
	}
}

func TestTraceDeterminism(t *testing.T) {
	f := newFixture(t, 23, 1)
	s1 := newSensors(f, 24)
	s2 := newSensors(f, 24)
	o1 := s1.CollectGSM(f.it.Start, f.it.Start.Add(2*time.Hour), time.Minute)
	o2 := s2.CollectGSM(f.it.Start, f.it.Start.Add(2*time.Hour), time.Minute)
	for i := range o1 {
		if o1[i].Cell != o2[i].Cell {
			t.Fatal("same seed produced different GSM traces")
		}
	}
}

func TestWiFiScanBSSIDs(t *testing.T) {
	scan := WiFiScan{APs: []WiFiReading{{BSSID: "a"}, {BSSID: "b"}}}
	got := scan.BSSIDs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("BSSIDs = %v", got)
	}
}

func TestPathLossMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{1, 10, 50, 100, 500, 1000} {
		v := pathLossDBM(d)
		if v >= prev {
			t.Fatalf("path loss not decreasing at %.0f m", d)
		}
		prev = v
	}
	if pathLossDBM(0.5) != pathLossDBM(1) {
		t.Error("sub-meter distances should clamp")
	}
}
