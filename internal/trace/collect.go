package trace

import (
	"sort"
	"time"
)

// CollectGSM samples the serving cell every interval over [from, to) and
// returns the observations in time order.
func (s *Sensors) CollectGSM(from, to time.Time, interval time.Duration) []GSMObservation {
	var out []GSMObservation
	for t := from; t.Before(to); t = t.Add(interval) {
		out = append(out, s.SampleGSM(t))
	}
	return out
}

// CollectWiFi performs scans every interval over [from, to).
func (s *Sensors) CollectWiFi(from, to time.Time, interval time.Duration) []WiFiScan {
	var out []WiFiScan
	for t := from; t.Before(to); t = t.Add(interval) {
		out = append(out, s.SampleWiFi(t))
	}
	return out
}

// CollectGPS samples fixes every interval over [from, to), keeping only
// valid fixes.
func (s *Sensors) CollectGPS(from, to time.Time, interval time.Duration) []GPSFix {
	var out []GPSFix
	for t := from; t.Before(to); t = t.Add(interval) {
		if fix := s.SampleGPS(t); fix.Valid {
			out = append(out, fix)
		}
	}
	return out
}

// DistinctCells returns the distinct cell IDs in the observations, sorted by
// string form.
func DistinctCells(obs []GSMObservation) []string {
	seen := map[string]bool{}
	for _, o := range obs {
		seen[o.Cell.String()] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
