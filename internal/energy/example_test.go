package energy_test

import (
	"fmt"
	"time"

	"repro/internal/energy"
)

func ExampleModel_BatteryLifeHours() {
	m := energy.DefaultModel()
	gps := m.BatteryLifeHours(energy.GPS, time.Minute)
	gsm := m.BatteryLifeHours(energy.GSM, time.Minute)
	fmt.Printf("GPS every minute: %.0f h\n", gps)
	fmt.Printf("GSM every minute: %.0f h (%.1fx)\n", gsm, gsm/gps)
	// Output:
	// GPS every minute: 60 h
	// GSM every minute: 666 h (11.1x)
}
