// Package energy models handset battery consumption for the location
// interfaces PMWare schedules. It reproduces the analysis behind Figure 1 of
// the paper: battery duration under continuous sensing of each interface at
// different sampling frequencies, on an HTC A310E-class device with a
// 1230 mAh battery.
//
// The model is a per-sample energy cost plus an idle floor; constants are
// calibrated so the headline ratio holds — sampling GSM every minute yields
// roughly 11x the battery duration of sampling GPS every minute.
package energy

import (
	"fmt"
	"time"
)

// Interface identifies a sensed radio/sensor.
type Interface int

// The location interfaces discussed in the paper.
const (
	GPS Interface = iota + 1
	WiFi
	GSM
	Accelerometer
	Bluetooth
)

var interfaceNames = map[Interface]string{
	GPS:           "GPS",
	WiFi:          "WiFi",
	GSM:           "GSM",
	Accelerometer: "Accelerometer",
	Bluetooth:     "Bluetooth",
}

// String returns the interface name.
func (i Interface) String() string {
	if s, ok := interfaceNames[i]; ok {
		return s
	}
	return fmt.Sprintf("Interface(%d)", int(i))
}

// AllInterfaces lists every interface in display order.
func AllInterfaces() []Interface {
	return []Interface{GPS, WiFi, GSM, Accelerometer, Bluetooth}
}

// Model holds the device energy parameters.
type Model struct {
	// BatteryMAh and VoltageV size the battery (1230 mAh @ 3.7 V for the
	// HTC A310E Explorer in Figure 1).
	BatteryMAh float64
	VoltageV   float64
	// IdleFloorW is the baseline draw of the otherwise-idle phone.
	IdleFloorW float64
	// SampleCostJ is the marginal energy of one sample per interface:
	// a GPS fix, a WiFi scan, a GSM serving-cell read, an accelerometer
	// window, a Bluetooth inquiry.
	SampleCostJ map[Interface]float64
}

// DefaultModel returns the calibrated HTC A310E model.
func DefaultModel() Model {
	return Model{
		BatteryMAh: 1230,
		VoltageV:   3.7,
		IdleFloorW: 0.006,
		SampleCostJ: map[Interface]float64{
			GPS:           4.2,   // ~12 s receiver-on at ~350 mW per fix
			WiFi:          1.5,   // active scan burst
			GSM:           0.05,  // modem already camped; reading is ~free
			Accelerometer: 0.012, // short sensing window
			Bluetooth:     1.0,   // inquiry scan
		},
	}
}

// BatteryJoules returns the battery capacity in joules.
func (m Model) BatteryJoules() float64 {
	return m.BatteryMAh / 1000 * m.VoltageV * 3600
}

// SampleCost returns the per-sample energy for the interface in joules.
// Unknown interfaces cost nothing.
func (m Model) SampleCost(i Interface) float64 { return m.SampleCostJ[i] }

// AveragePowerW returns the mean draw when the interface is sampled
// continuously at the given interval, including the idle floor.
func (m Model) AveragePowerW(i Interface, interval time.Duration) float64 {
	if interval <= 0 {
		interval = time.Second
	}
	return m.IdleFloorW + m.SampleCostJ[i]/interval.Seconds()
}

// BatteryLifeHours returns the projected battery duration under continuous
// sampling of a single interface at the given interval — one point of
// Figure 1.
func (m Model) BatteryLifeHours(i Interface, interval time.Duration) float64 {
	return m.BatteryJoules() / m.AveragePowerW(i, interval) / 3600
}

// Load describes one interface sampled at a fixed interval, for combined
// projections.
type Load struct {
	Interface Interface
	Interval  time.Duration
}

// BatteryLifeHoursCombined projects battery duration under several
// concurrent sampling loads (idle floor counted once).
func (m Model) BatteryLifeHoursCombined(loads []Load) float64 {
	power := m.IdleFloorW
	for _, l := range loads {
		if l.Interval <= 0 {
			continue
		}
		power += m.SampleCostJ[l.Interface] / l.Interval.Seconds()
	}
	return m.BatteryJoules() / power / 3600
}

// Meter accumulates sampling activity during a simulation and projects the
// resulting battery life. PMWare's scheduler charges every sample it
// triggers to a meter, which is what makes the triggered-sensing ablations
// apples-to-apples.
type Meter struct {
	model    Model
	samples  map[Interface]int
	consumed float64 // joules from samples only
}

// NewMeter returns a meter over the given model.
func NewMeter(model Model) *Meter {
	return &Meter{model: model, samples: make(map[Interface]int)}
}

// Charge records n samples of the interface.
func (mt *Meter) Charge(i Interface, n int) {
	if n <= 0 {
		return
	}
	mt.samples[i] += n
	mt.consumed += float64(n) * mt.model.SampleCostJ[i]
}

// Samples returns the number of samples charged for the interface.
func (mt *Meter) Samples(i Interface) int { return mt.samples[i] }

// TotalSamples returns all samples charged across interfaces.
func (mt *Meter) TotalSamples() int {
	total := 0
	for _, n := range mt.samples {
		total += n
	}
	return total
}

// ConsumedJoules returns sampling energy plus idle-floor energy over the
// elapsed simulated duration.
func (mt *Meter) ConsumedJoules(elapsed time.Duration) float64 {
	return mt.consumed + mt.model.IdleFloorW*elapsed.Seconds()
}

// AveragePowerW returns the mean draw over the elapsed duration.
func (mt *Meter) AveragePowerW(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return mt.model.IdleFloorW
	}
	return mt.ConsumedJoules(elapsed) / elapsed.Seconds()
}

// ProjectedLifeHours extrapolates battery duration from the consumption rate
// observed over the elapsed simulated duration.
func (mt *Meter) ProjectedLifeHours(elapsed time.Duration) float64 {
	p := mt.AveragePowerW(elapsed)
	if p <= 0 {
		return 0
	}
	return mt.model.BatteryJoules() / p / 3600
}

// Reset clears all charged samples.
func (mt *Meter) Reset() {
	mt.samples = make(map[Interface]int)
	mt.consumed = 0
}
