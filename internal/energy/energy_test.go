package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBatteryJoules(t *testing.T) {
	m := DefaultModel()
	// 1230 mAh * 3.7 V = 4.551 Wh = 16383.6 J
	if got := m.BatteryJoules(); math.Abs(got-16383.6) > 0.1 {
		t.Errorf("BatteryJoules = %.1f, want 16383.6", got)
	}
}

func TestHeadlineRatio(t *testing.T) {
	// Paper: "battery duration is almost 11x if GSM location is sensed at
	// every minute compared to GPS coordinates."
	ratio := GSMToGPSRatioAtMinute(DefaultModel())
	if ratio < 9 || ratio < 0 || ratio > 13 {
		t.Errorf("GSM/GPS battery ratio = %.2f, want ~11 (9-13 band)", ratio)
	}
}

func TestInterfaceOrdering(t *testing.T) {
	// At every interval: GSM outlasts WiFi outlasts GPS.
	m := DefaultModel()
	for _, interval := range Figure1Intervals() {
		gps := m.BatteryLifeHours(GPS, interval)
		wifi := m.BatteryLifeHours(WiFi, interval)
		gsm := m.BatteryLifeHours(GSM, interval)
		if !(gsm > wifi && wifi > gps) {
			t.Errorf("interval %v: ordering violated gsm=%.1f wifi=%.1f gps=%.1f",
				interval, gsm, wifi, gps)
		}
	}
}

func TestLifeMonotoneInInterval(t *testing.T) {
	// Slower sampling always extends battery life.
	m := DefaultModel()
	for _, iface := range Figure1Interfaces() {
		prev := 0.0
		for _, interval := range Figure1Intervals() {
			life := m.BatteryLifeHours(iface, interval)
			if life <= prev {
				t.Errorf("%v: life not increasing at %v", iface, interval)
			}
			prev = life
		}
	}
}

func TestAveragePowerFloorsAtIdle(t *testing.T) {
	m := DefaultModel()
	f := func(secs uint16) bool {
		interval := time.Duration(secs+1) * time.Second
		for _, iface := range AllInterfaces() {
			if m.AveragePowerW(iface, interval) < m.IdleFloorW {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAveragePowerZeroIntervalClamps(t *testing.T) {
	m := DefaultModel()
	if p := m.AveragePowerW(GPS, 0); math.IsInf(p, 1) || p <= 0 {
		t.Errorf("zero interval power = %v", p)
	}
}

func TestCombinedLoadShorterThanSingle(t *testing.T) {
	m := DefaultModel()
	single := m.BatteryLifeHours(GSM, time.Minute)
	combined := m.BatteryLifeHoursCombined([]Load{
		{GSM, time.Minute},
		{WiFi, 5 * time.Minute},
	})
	if combined >= single {
		t.Errorf("adding WiFi load should shorten life: %.1f vs %.1f", combined, single)
	}
	// Zero-interval loads are skipped, not infinite.
	same := m.BatteryLifeHoursCombined([]Load{{GSM, time.Minute}, {WiFi, 0}})
	if math.Abs(same-single) > 1e-9 {
		t.Errorf("zero-interval load should be ignored: %.3f vs %.3f", same, single)
	}
}

func TestCombinedMatchesSingle(t *testing.T) {
	m := DefaultModel()
	a := m.BatteryLifeHours(WiFi, 30*time.Second)
	b := m.BatteryLifeHoursCombined([]Load{{WiFi, 30 * time.Second}})
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("combined single load mismatch: %.6f vs %.6f", a, b)
	}
}

func TestMeterAccounting(t *testing.T) {
	m := DefaultModel()
	mt := NewMeter(m)
	mt.Charge(GPS, 10)
	mt.Charge(GSM, 100)
	mt.Charge(GPS, 5)
	mt.Charge(WiFi, -3) // ignored

	if got := mt.Samples(GPS); got != 15 {
		t.Errorf("GPS samples = %d, want 15", got)
	}
	if got := mt.Samples(WiFi); got != 0 {
		t.Errorf("negative charge should be ignored, got %d", got)
	}
	if got := mt.TotalSamples(); got != 115 {
		t.Errorf("total = %d, want 115", got)
	}
	wantJ := 15*m.SampleCostJ[GPS] + 100*m.SampleCostJ[GSM]
	elapsed := time.Hour
	if got := mt.ConsumedJoules(elapsed); math.Abs(got-(wantJ+m.IdleFloorW*3600)) > 1e-9 {
		t.Errorf("ConsumedJoules = %.3f", got)
	}
}

func TestMeterProjection(t *testing.T) {
	m := DefaultModel()
	mt := NewMeter(m)
	// One day of GSM-per-minute sampling.
	mt.Charge(GSM, 24*60)
	day := 24 * time.Hour
	proj := mt.ProjectedLifeHours(day)
	closed := m.BatteryLifeHours(GSM, time.Minute)
	if math.Abs(proj-closed) > 0.5 {
		t.Errorf("meter projection %.1f disagrees with closed form %.1f", proj, closed)
	}
}

func TestMeterReset(t *testing.T) {
	mt := NewMeter(DefaultModel())
	mt.Charge(GPS, 5)
	mt.Reset()
	if mt.TotalSamples() != 0 {
		t.Error("reset did not clear samples")
	}
	if mt.ConsumedJoules(0) != 0 {
		t.Error("reset did not clear consumption")
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	mt := NewMeter(DefaultModel())
	if p := mt.AveragePowerW(0); p != DefaultModel().IdleFloorW {
		t.Errorf("zero-elapsed power = %v", p)
	}
}

func TestFigure1Shape(t *testing.T) {
	rows := Figure1(DefaultModel())
	if len(rows) != len(Figure1Interfaces())*len(Figure1Intervals()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LifeHours <= 0 || r.AvgPowerMW <= 0 {
			t.Errorf("non-positive row %+v", r)
		}
	}
}

func TestWriteFigure1(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigure1(&sb, DefaultModel()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"GPS", "WiFi", "GSM", "ratio", "Battery"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestInterfaceString(t *testing.T) {
	if GPS.String() != "GPS" || Accelerometer.String() != "Accelerometer" {
		t.Error("interface names wrong")
	}
	if got := Interface(42).String(); got != "Interface(42)" {
		t.Errorf("unknown interface = %q", got)
	}
	if len(AllInterfaces()) != 5 {
		t.Error("AllInterfaces should list 5")
	}
}
