package energy

import (
	"fmt"
	"io"
	"time"
)

// Figure1Row is one point of the paper's Figure 1: projected battery
// duration for one interface sampled continuously at one interval.
type Figure1Row struct {
	Interface  Interface
	Interval   time.Duration
	AvgPowerMW float64
	LifeHours  float64
}

// Figure1Intervals are the sampling intervals swept in the reproduction of
// Figure 1.
func Figure1Intervals() []time.Duration {
	return []time.Duration{
		10 * time.Second,
		30 * time.Second,
		time.Minute,
		2 * time.Minute,
		5 * time.Minute,
	}
}

// Figure1Interfaces are the location interfaces plotted in Figure 1.
func Figure1Interfaces() []Interface {
	return []Interface{GPS, WiFi, GSM}
}

// Figure1 computes the battery-duration matrix of the paper's Figure 1.
func Figure1(m Model) []Figure1Row {
	var rows []Figure1Row
	for _, iface := range Figure1Interfaces() {
		for _, interval := range Figure1Intervals() {
			rows = append(rows, Figure1Row{
				Interface:  iface,
				Interval:   interval,
				AvgPowerMW: m.AveragePowerW(iface, interval) * 1000,
				LifeHours:  m.BatteryLifeHours(iface, interval),
			})
		}
	}
	return rows
}

// GSMToGPSRatioAtMinute returns the headline Figure 1 ratio: battery
// duration sensing GSM every minute over battery duration sensing GPS every
// minute. The paper reports "almost 11x".
func GSMToGPSRatioAtMinute(m Model) float64 {
	return m.BatteryLifeHours(GSM, time.Minute) / m.BatteryLifeHours(GPS, time.Minute)
}

// WriteFigure1 renders the Figure 1 matrix as an aligned text table.
func WriteFigure1(w io.Writer, m Model) error {
	rows := Figure1(m)
	if _, err := fmt.Fprintf(w, "%-14s %-10s %14s %16s\n", "Interface", "Interval", "AvgPower (mW)", "Battery (hours)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-14s %-10s %14.2f %16.1f\n",
			r.Interface, r.Interval, r.AvgPowerMW, r.LifeHours); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nGSM@1min / GPS@1min battery ratio: %.1fx (paper: ~11x)\n", GSMToGPSRatioAtMinute(m))
	return err
}
