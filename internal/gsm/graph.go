// Package gsm implements GCA, the GSM-based place discovery algorithm PMWare
// bootstraps with (paper Section 2.2.2, originally from PlaceMap [26]).
//
// GCA's core difficulty is the "oscillating effect": the serving Cell-ID
// changes even while the user is stationary, due to network load, short-time
// signal fading, and 2G/3G inter-network handoff. GCA models oscillation
// among Cell-IDs as an undirected weighted graph (the movement graph) and
// clusters with heuristics over edge weights and node degrees.
package gsm

import (
	"sort"
	"time"

	"repro/internal/trace"
	"repro/internal/world"
)

// Params tunes GCA. Zero value is not useful; start from DefaultParams.
type Params struct {
	// Window is the look-back horizon for cell-diversity stationarity
	// detection.
	Window time.Duration
	// MaxCellsInWindow is the stationarity criterion: at most this many
	// distinct cells inside Window.
	MaxCellsInWindow int
	// MinStay is the minimum dwell for a segment to count as a place visit
	// (the paper cites 10 minutes, after [19]).
	MinStay time.Duration
	// BounceWindow bounds the u->v->u round-trip time that counts as an
	// oscillation bounce rather than genuine movement.
	BounceWindow time.Duration
	// MinBounceWeight is the edge weight at which two cells are considered
	// oscillation partners (same physical place).
	MinBounceWeight int
	// MergeOverlap is the cosine similarity (over oscillation-expanded,
	// dwell-weighted cell vectors) above which two stay segments are the
	// same place.
	MergeOverlap float64
	// SignatureSize caps the place signature at the top-N cells by dwell
	// (the paper writes signatures as ~5 cells).
	SignatureSize int
}

// DefaultParams returns the GCA parameters used by the deployment study.
func DefaultParams() Params {
	return Params{
		Window:           10 * time.Minute,
		MaxCellsInWindow: 4,
		MinStay:          10 * time.Minute,
		BounceWindow:     10 * time.Minute,
		MinBounceWeight:  3,
		MergeOverlap:     0.45,
		SignatureSize:    5,
	}
}

// Graph is the movement graph: nodes are Cell-IDs, edge weights count
// transitions, and bounce weights count rapid u->v->u round trips (the
// oscillation evidence).
type Graph struct {
	nodes  map[world.CellID]*node
	totalE int
}

type node struct {
	id      world.CellID
	dwell   int // observation count while serving
	edges   map[world.CellID]int
	bounces map[world.CellID]int
}

// BuildGraph constructs the movement graph from a time-ordered observation
// trace.
func BuildGraph(obs []trace.GSMObservation, p Params) *Graph {
	g := &Graph{nodes: make(map[world.CellID]*node)}
	for i, o := range obs {
		var prev, prev2 *trace.GSMObservation
		if i >= 1 {
			prev = &obs[i-1]
		}
		if i >= 2 {
			prev2 = &obs[i-2]
		}
		g.observe(prev2, prev, o, p)
	}
	return g
}

// observe folds one observation into the graph given its up-to-two
// predecessors (nil when the trace is shorter). It is the single fold step
// shared by BuildGraph and the incremental Pipeline, so both construct
// identical graphs by definition.
func (g *Graph) observe(prev2, prev *trace.GSMObservation, o trace.GSMObservation, p Params) {
	n := g.ensure(o.Cell)
	n.dwell++
	if prev == nil {
		return
	}
	if prev.Cell != o.Cell {
		g.addEdge(prev.Cell, o.Cell)
	}
	// Bounce: obs[i-2] == obs[i] != obs[i-1], within the bounce window.
	if prev2 != nil && prev2.Cell == o.Cell && prev.Cell != o.Cell &&
		o.At.Sub(prev2.At) <= p.BounceWindow {
		g.addBounce(o.Cell, prev.Cell)
	}
}

func (g *Graph) ensure(id world.CellID) *node {
	n, ok := g.nodes[id]
	if !ok {
		n = &node{id: id, edges: make(map[world.CellID]int), bounces: make(map[world.CellID]int)}
		g.nodes[id] = n
	}
	return n
}

func (g *Graph) addEdge(a, b world.CellID) {
	g.ensure(a).edges[b]++
	g.ensure(b).edges[a]++
	g.totalE++
}

func (g *Graph) addBounce(a, b world.CellID) {
	g.ensure(a).bounces[b]++
	g.ensure(b).bounces[a]++
}

// NumNodes returns the number of distinct cells seen.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumTransitions returns the total number of cell transitions observed.
func (g *Graph) NumTransitions() int { return g.totalE }

// EdgeWeight returns the transition count between two cells.
func (g *Graph) EdgeWeight(a, b world.CellID) int {
	if n, ok := g.nodes[a]; ok {
		return n.edges[b]
	}
	return 0
}

// BounceWeight returns the oscillation bounce count between two cells.
func (g *Graph) BounceWeight(a, b world.CellID) int {
	if n, ok := g.nodes[a]; ok {
		return n.bounces[b]
	}
	return 0
}

// Degree returns the number of distinct neighbours of the cell.
func (g *Graph) Degree(id world.CellID) int {
	if n, ok := g.nodes[id]; ok {
		return len(n.edges)
	}
	return 0
}

// Dwell returns the number of observations the cell served.
func (g *Graph) Dwell(id world.CellID) int {
	if n, ok := g.nodes[id]; ok {
		return n.dwell
	}
	return 0
}

// OscillationPartners returns cells whose bounce weight with id meets the
// threshold, sorted for determinism.
func (g *Graph) OscillationPartners(id world.CellID, minWeight int) []world.CellID {
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	var out []world.CellID
	for other, w := range n.bounces {
		if w >= minWeight {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Cells returns every cell in the graph, sorted for determinism.
func (g *Graph) Cells() []world.CellID {
	out := make([]world.CellID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
