package gsm

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// canonicalPlaces serializes places into a deterministic byte form so tests
// can assert byte-identical output across discovery implementations.
func canonicalPlaces(t *testing.T, places []*Place) []byte {
	t.Helper()
	type wire struct {
		ID        int
		Signature []string
		AllCells  []string
		Visits    []Visit
	}
	out := make([]wire, len(places))
	for i, p := range places {
		w := wire{ID: p.ID, Visits: p.Visits}
		for _, c := range p.Signature {
			w.Signature = append(w.Signature, c.String())
		}
		for c := range p.AllCells {
			w.AllCells = append(w.AllCells, c.String())
		}
		sort.Strings(w.AllCells)
		out[i] = w
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// randomSplit cuts the trace into 1..6 contiguous batches at random
// boundaries (empty batches allowed).
func randomSplit(r *rand.Rand, obs []trace.GSMObservation) [][]trace.GSMObservation {
	parts := 1 + r.Intn(6)
	cuts := make([]int, 0, parts+1)
	cuts = append(cuts, 0)
	for i := 1; i < parts; i++ {
		cuts = append(cuts, r.Intn(len(obs)+1))
	}
	cuts = append(cuts, len(obs))
	sort.Ints(cuts)
	var out [][]trace.GSMObservation
	for i := 1; i < len(cuts); i++ {
		out = append(out, obs[cuts[i-1]:cuts[i]])
	}
	return out
}

// TestPipelineMatchesBatch is the tentpole equivalence property: extending a
// Pipeline over ANY contiguous split of a trace yields byte-identical places
// to one-shot Discover, at every intermediate prefix as well as the end.
func TestPipelineMatchesBatch(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := genTrace(seed)
		pl := NewPipeline(p)
		consumed := 0
		for _, batch := range randomSplit(r, obs) {
			pl.Extend(batch)
			consumed += len(batch)
			if pl.Len() != consumed {
				t.Logf("seed %d: Len=%d want %d", seed, pl.Len(), consumed)
				return false
			}
			want := Discover(obs[:consumed], p)
			got := pl.Result()
			if string(canonicalPlaces(t, got.Places)) != string(canonicalPlaces(t, want.Places)) {
				t.Logf("seed %d: places diverge at prefix %d", seed, consumed)
				return false
			}
			if !reflect.DeepEqual(got.Places, want.Places) {
				t.Logf("seed %d: DeepEqual diverges at prefix %d", seed, consumed)
				return false
			}
			if len(got.Segments) != len(want.Segments) {
				t.Logf("seed %d: segments %d want %d", seed, len(got.Segments), len(want.Segments))
				return false
			}
			for i := range got.Segments {
				if !got.Segments[i].Start.Equal(want.Segments[i].Start) ||
					!got.Segments[i].End.Equal(want.Segments[i].End) ||
					!reflect.DeepEqual(got.Segments[i].dwellBy, want.Segments[i].dwellBy) {
					t.Logf("seed %d: segment %d diverges", seed, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPipelineMatchesBatchGraph pins the incremental graph fold to
// BuildGraph across random splits.
func TestPipelineMatchesBatchGraph(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := genTrace(seed)
		pl := NewPipeline(p)
		for _, batch := range randomSplit(r, obs) {
			pl.Extend(batch)
		}
		want := BuildGraph(obs, p)
		got := pl.Result().Graph
		if got.NumNodes() != want.NumNodes() || got.NumTransitions() != want.NumTransitions() {
			return false
		}
		for _, a := range want.Cells() {
			if got.Dwell(a) != want.Dwell(a) || got.Degree(a) != want.Degree(a) {
				return false
			}
			for _, b := range want.Cells() {
				if got.EdgeWeight(a, b) != want.EdgeWeight(b, a) ||
					got.BounceWeight(a, b) != want.BounceWeight(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPipelineOneByOne feeds a trace a single observation at a time — the
// worst case for checkpoint bookkeeping — and checks the final output plus
// the claim that the retained buffer stays small.
func TestPipelineOneByOne(t *testing.T) {
	p := DefaultParams()
	obs := genTrace(7)
	pl := NewPipeline(p)
	for i := range obs {
		pl.Extend(obs[i : i+1])
	}
	want := Discover(obs, p)
	got := pl.Result()
	if string(canonicalPlaces(t, got.Places)) != string(canonicalPlaces(t, want.Places)) {
		t.Fatalf("one-by-one pipeline diverges from batch")
	}
	// The buffer must not hold the full history: at most the stationarity
	// window, the open run, and the fold context.
	if len(pl.buf) >= len(obs) && len(obs) > 50 {
		t.Fatalf("buffer not pruned: holds %d of %d observations", len(pl.buf), len(obs))
	}
}

func TestPipelineEmpty(t *testing.T) {
	pl := NewPipeline(DefaultParams())
	res := pl.Result()
	if len(res.Places) != 0 || len(res.Segments) != 0 {
		t.Fatalf("empty pipeline produced output: %+v", res)
	}
	pl.Extend(nil)
	if pl.Len() != 0 {
		t.Fatalf("Extend(nil) consumed observations")
	}
}

// TestMergePrunedMatchesQuadratic pins the pruned+parallel merge pass to the
// quadratic reference over random traces.
func TestMergePrunedMatchesQuadratic(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		obs := genTrace(seed)
		g := BuildGraph(obs, p)
		segs := segmentStays(obs, p)
		a := mergeSegments(segs, g, p)
		b := mergeSegmentsQuadratic(segs, g, p)
		return string(canonicalPlaces(t, a)) == string(canonicalPlaces(t, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMergePrunedZeroThreshold covers the MergeOverlap<=0 edge case where
// every pair merges regardless of shared cells — the one case the inverted
// index cannot prune.
func TestMergePrunedZeroThreshold(t *testing.T) {
	p := DefaultParams()
	p.MergeOverlap = 0
	obs := genTrace(11)
	g := BuildGraph(obs, p)
	segs := segmentStays(obs, p)
	a := mergeSegments(segs, g, p)
	b := mergeSegmentsQuadratic(segs, g, p)
	if string(canonicalPlaces(t, a)) != string(canonicalPlaces(t, b)) {
		t.Fatalf("zero-threshold merge diverges from quadratic reference")
	}
	if len(segs) > 1 && len(a) != 1 {
		t.Fatalf("zero threshold should merge all %d segments into one place, got %d", len(segs), len(a))
	}
}

// synthTrace builds a days-long trace with a daily home/commute/work/commute
// rhythm — the shape of the paper's deployment data — at one observation per
// minute.
func synthTrace(days int, seed int64) []trace.GSMObservation {
	r := rand.New(rand.NewSource(seed))
	home := []int{10, 11, 12}
	work := []int{20, 21}
	var obs []trace.GSMObservation
	at := simclock.Epoch
	emit := func(set []int, minutes int) {
		for m := 0; m < minutes; m++ {
			obs = append(obs, trace.GSMObservation{At: at, Cell: cell(set[r.Intn(len(set))])})
			at = at.Add(time.Minute)
		}
	}
	nextCell := 1000
	commute := func(minutes int) {
		for m := 0; m < minutes; m++ {
			nextCell++
			obs = append(obs, trace.GSMObservation{At: at, Cell: cell(nextCell)})
			at = at.Add(time.Minute)
		}
	}
	for d := 0; d < days; d++ {
		emit(home, 7*60)
		commute(30)
		emit(work, 9*60)
		commute(30)
		emit(home, 7*60)
	}
	return obs
}

// BenchmarkDiscoveryFull is the pre-PR cost model: full batch re-discovery
// over the entire accumulated trace after one new day arrives.
func BenchmarkDiscoveryFull(b *testing.B) {
	for _, days := range []int{7, 30} {
		obs := synthTrace(days+1, 42)
		b.Run(fmt.Sprintf("days=%d", days), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := Discover(obs, DefaultParams())
				if len(res.Places) == 0 {
					b.Fatal("no places")
				}
			}
		})
	}
}

// BenchmarkDiscoveryIncremental is the post-PR cost model: a pipeline warm
// with `days` of history consumes one new day and re-merges.
func BenchmarkDiscoveryIncremental(b *testing.B) {
	for _, days := range []int{7, 30} {
		obs := synthTrace(days+1, 42)
		perDay := len(obs) / (days + 1)
		warm, delta := obs[:days*perDay], obs[days*perDay:]
		b.Run(fmt.Sprintf("days=%d", days), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pl := NewPipeline(DefaultParams())
				pl.Extend(warm)
				b.StartTimer()
				pl.Extend(delta)
				res := pl.Result()
				if len(res.Places) == 0 {
					b.Fatal("no places")
				}
			}
		})
	}
}

// BenchmarkMergeSegments compares the pruned+parallel merge pass against the
// quadratic reference on a month of segments.
func BenchmarkMergeSegments(b *testing.B) {
	obs := synthTrace(30, 42)
	p := DefaultParams()
	g := BuildGraph(obs, p)
	segs := segmentStays(obs, p)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(mergeSegments(segs, g, p)) == 0 {
				b.Fatal("no places")
			}
		}
	})
	b.Run("quadratic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(mergeSegmentsQuadratic(segs, g, p)) == 0 {
				b.Fatal("no places")
			}
		}
	})
}
