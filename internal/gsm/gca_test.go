package gsm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func cell(cid int) world.CellID {
	return world.CellID{MCC: 404, MNC: 10, LAC: 1, CID: cid}
}

// mkTrace builds one observation per minute from the given cell ids.
func mkTrace(cids ...int) []trace.GSMObservation {
	obs := make([]trace.GSMObservation, len(cids))
	for i, c := range cids {
		obs[i] = trace.GSMObservation{
			At:   simclock.Epoch.Add(time.Duration(i) * time.Minute),
			Cell: cell(c),
		}
	}
	return obs
}

// repeat returns n copies of the pattern.
func repeat(pattern []int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, pattern...)
	}
	return out
}

func TestBuildGraphCounts(t *testing.T) {
	obs := mkTrace(1, 2, 1, 2, 1, 3)
	g := BuildGraph(obs, DefaultParams())
	if g.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", g.NumNodes())
	}
	if got := g.EdgeWeight(cell(1), cell(2)); got != 4 {
		t.Errorf("edge(1,2) = %d, want 4", got)
	}
	if g.EdgeWeight(cell(1), cell(2)) != g.EdgeWeight(cell(2), cell(1)) {
		t.Error("edge weights not symmetric")
	}
	if got := g.EdgeWeight(cell(2), cell(3)); got != 0 {
		t.Errorf("edge(2,3) = %d, want 0", got)
	}
	if got := g.Dwell(cell(1)); got != 3 {
		t.Errorf("dwell(1) = %d, want 3", got)
	}
	if got := g.Degree(cell(1)); got != 2 {
		t.Errorf("degree(1) = %d, want 2", got)
	}
	// Bounces: 1-2-1 at idx 0..2, 2-1-2 at 1..3, 1-2-1 at 2..4 => (1,2) has 3.
	if got := g.BounceWeight(cell(1), cell(2)); got != 3 {
		t.Errorf("bounce(1,2) = %d, want 3", got)
	}
	if g.NumTransitions() != 5 {
		t.Errorf("transitions = %d, want 5", g.NumTransitions())
	}
}

func TestBounceWindowExcludesSlowReturns(t *testing.T) {
	// 1 ... 2 (20 min later) ... 1 (20 min later): a commute, not a bounce.
	obs := []trace.GSMObservation{
		{At: simclock.Epoch, Cell: cell(1)},
		{At: simclock.Epoch.Add(20 * time.Minute), Cell: cell(2)},
		{At: simclock.Epoch.Add(40 * time.Minute), Cell: cell(1)},
	}
	g := BuildGraph(obs, DefaultParams())
	if got := g.BounceWeight(cell(1), cell(2)); got != 0 {
		t.Errorf("slow return counted as bounce: %d", got)
	}
}

func TestOscillationPartners(t *testing.T) {
	obs := mkTrace(repeat([]int{1, 2}, 10)...)
	g := BuildGraph(obs, DefaultParams())
	partners := g.OscillationPartners(cell(1), 3)
	if len(partners) != 1 || partners[0] != cell(2) {
		t.Errorf("partners = %v, want [cell 2]", partners)
	}
	if got := g.OscillationPartners(cell(99), 1); got != nil {
		t.Errorf("partners of unknown cell = %v", got)
	}
}

func TestSegmentStaysBasic(t *testing.T) {
	// 40 min oscillating at {1,2}, 15 min of fresh cells (movement),
	// 40 min oscillating at {7,8}.
	cids := repeat([]int{1, 2}, 20)
	for c := 10; c < 25; c++ {
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{7, 8}, 20)...)
	segs := segmentStays(mkTrace(cids...), DefaultParams())
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if _, ok := segs[0].Cells[cell(1)]; !ok {
		t.Error("segment 0 missing cell 1")
	}
	if _, ok := segs[1].Cells[cell(7)]; !ok {
		t.Error("segment 1 missing cell 7")
	}
	if !segs[0].End.Before(segs[1].Start) {
		t.Error("segments out of order")
	}
}

func TestSegmentStaysShortStopIgnored(t *testing.T) {
	// 5 minutes at a spot is below MinStay: no place visit.
	cids := []int{}
	for c := 10; c < 40; c++ { // movement
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{50}, 5)...) // 5 min stop
	for c := 60; c < 90; c++ {                   // movement
		cids = append(cids, c)
	}
	segs := segmentStays(mkTrace(cids...), DefaultParams())
	for _, s := range segs {
		if _, ok := s.Cells[cell(50)]; ok && s.End.Sub(s.Start) < DefaultParams().MinStay {
			t.Error("short stop produced an undersized segment")
		}
	}
}

func TestSegmentStaysEmpty(t *testing.T) {
	if segs := segmentStays(nil, DefaultParams()); segs != nil {
		t.Errorf("empty trace segments = %v", segs)
	}
}

func TestDiscoverMergesRepeatVisits(t *testing.T) {
	// Two 40-min visits to the same cell neighbourhood separated by travel:
	// must merge into one place with two visits.
	cids := repeat([]int{1, 2}, 20)
	for c := 10; c < 30; c++ {
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{2, 1}, 20)...)
	res := Discover(mkTrace(cids...), DefaultParams())
	if len(res.Places) != 1 {
		t.Fatalf("places = %d, want 1 (merge failed)", len(res.Places))
	}
	if got := len(res.Places[0].Visits); got != 2 {
		t.Errorf("visits = %d, want 2", got)
	}
}

func TestDiscoverKeepsDistinctPlacesApart(t *testing.T) {
	cids := repeat([]int{1, 2}, 20)
	for c := 10; c < 30; c++ {
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{7, 8}, 20)...)
	res := Discover(mkTrace(cids...), DefaultParams())
	if len(res.Places) != 2 {
		t.Fatalf("places = %d, want 2", len(res.Places))
	}
}

func TestDiscoverOscillationExpansionMerges(t *testing.T) {
	// Visit 1 camps on {1,2}; visit 2 camps on {2,3}. Bounces 1<->2 and
	// 2<->3 mark all three as partners, so the visits merge even though the
	// raw sets differ.
	cids := repeat([]int{1, 2}, 20)
	for c := 10; c < 30; c++ {
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{2, 3}, 20)...)
	res := Discover(mkTrace(cids...), DefaultParams())
	if len(res.Places) != 1 {
		t.Fatalf("places = %d, want 1", len(res.Places))
	}
}

func TestPlaceInvariants(t *testing.T) {
	cids := repeat([]int{1, 2, 3}, 15)
	for c := 10; c < 30; c++ {
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{7, 8}, 20)...)
	res := Discover(mkTrace(cids...), DefaultParams())

	totalVisits := 0
	for _, p := range res.Places {
		totalVisits += len(p.Visits)
		if len(p.Signature) == 0 || len(p.Signature) > DefaultParams().SignatureSize {
			t.Errorf("place %d signature size %d", p.ID, len(p.Signature))
		}
		for _, c := range p.Signature {
			if !p.HasCell(c) {
				t.Errorf("signature cell %v not in AllCells", c)
			}
		}
		for i := 1; i < len(p.Visits); i++ {
			if p.Visits[i].Arrive.Before(p.Visits[i-1].Arrive) {
				t.Errorf("place %d visits unsorted", p.ID)
			}
		}
		if p.TotalDwell() < DefaultParams().MinStay {
			t.Errorf("place %d dwell %v below MinStay", p.ID, p.TotalDwell())
		}
	}
	if totalVisits != len(res.Segments) {
		t.Errorf("visits %d != segments %d: a segment was lost or duplicated", totalVisits, len(res.Segments))
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	cids := repeat([]int{1, 2}, 30)
	for c := 10; c < 40; c++ {
		cids = append(cids, c)
	}
	cids = append(cids, repeat([]int{7, 8, 9}, 15)...)
	r1 := Discover(mkTrace(cids...), DefaultParams())
	r2 := Discover(mkTrace(cids...), DefaultParams())
	if len(r1.Places) != len(r2.Places) {
		t.Fatal("non-deterministic place count")
	}
	for i := range r1.Places {
		if r1.Places[i].ID != r2.Places[i].ID || len(r1.Places[i].Signature) != len(r2.Places[i].Signature) {
			t.Fatal("non-deterministic place output")
		}
	}
}

// --- end-to-end against the simulator ---

type simFixture struct {
	w  *world.World
	a  *mobility.Agent
	it *mobility.Itinerary
}

func simTrace(t *testing.T, seed int64, days int) (*simFixture, []trace.GSMObservation) {
	t.Helper()
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(seed))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	a := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			a.Haunts = append(a.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(a, w, simclock.Epoch, days, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("BuildItinerary: %v", err)
	}
	s := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(seed+2)))
	return &simFixture{w, a, it}, s.CollectGSM(it.Start, it.End, time.Minute)
}

func TestDiscoverOnSimulatedWeek(t *testing.T) {
	fx, obs := simTrace(t, 31, 7)
	res := Discover(obs, DefaultParams())

	truth := fx.it.VisitedVenueIDs(10 * time.Minute)
	if len(res.Places) == 0 {
		t.Fatal("no places discovered from a week of life")
	}
	// GSM granularity cannot exceed ground truth by much, nor collapse
	// everything: the discovered count should be within a reasonable band of
	// the true venue count.
	if len(res.Places) < len(truth)/3 || len(res.Places) > len(truth)*3 {
		t.Errorf("discovered %d places for %d true venues", len(res.Places), len(truth))
	}

	// Home and work dominate dwell time: the two places with the largest
	// dwell must correspond to distinct true venues near home and work.
	byDwell := make([]*Place, len(res.Places))
	copy(byDwell, res.Places)
	for i := 0; i < len(byDwell); i++ {
		for j := i + 1; j < len(byDwell); j++ {
			if byDwell[j].TotalDwell() > byDwell[i].TotalDwell() {
				byDwell[i], byDwell[j] = byDwell[j], byDwell[i]
			}
		}
	}
	if len(byDwell) < 2 {
		t.Fatal("expected at least home and work discovered")
	}
	if byDwell[0].TotalDwell() < 24*time.Hour {
		t.Errorf("top place dwell %v too small for a week of nights", byDwell[0].TotalDwell())
	}
}

func TestTrackerRecognizesVisits(t *testing.T) {
	fx, obs := simTrace(t, 37, 8)
	// Discover on the first 7 days, track on day 8.
	var trainEnd int
	day8 := simclock.Epoch.AddDate(0, 0, 7)
	for i, o := range obs {
		if o.At.Before(day8) {
			trainEnd = i
		}
	}
	res := Discover(obs[:trainEnd+1], DefaultParams())
	tr := NewTracker(res.Places)

	var events []Event
	for _, o := range obs[trainEnd+1:] {
		events = append(events, tr.Observe(o)...)
	}
	if len(events) == 0 {
		t.Fatal("tracker produced no events on a full day")
	}
	// Arrival/departure alternation per place.
	open := map[int]bool{}
	for _, e := range events {
		switch e.Kind {
		case Arrival:
			if open[e.PlaceID] {
				t.Fatalf("double arrival at place %d", e.PlaceID)
			}
			open[e.PlaceID] = true
		case Departure:
			if !open[e.PlaceID] {
				t.Fatalf("departure without arrival at place %d", e.PlaceID)
			}
			open[e.PlaceID] = false
		}
	}
	// Events must be time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatal("events out of order")
		}
	}
	_ = fx
}

func TestEventKindString(t *testing.T) {
	if Arrival.String() != "arrival" || Departure.String() != "departure" || EventKind(9).String() != "unknown" {
		t.Error("event kind names wrong")
	}
}

func TestTrackerEmptyPlaces(t *testing.T) {
	tr := NewTracker(nil)
	for i := 0; i < 20; i++ {
		if ev := tr.Observe(trace.GSMObservation{At: simclock.Epoch.Add(time.Duration(i) * time.Minute), Cell: cell(1)}); len(ev) != 0 {
			t.Fatal("tracker with no places emitted events")
		}
	}
	if tr.Current() != -1 {
		t.Error("tracker with no places should be at no place")
	}
}
