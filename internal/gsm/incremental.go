package gsm

import (
	"time"

	"repro/internal/trace"
	"repro/internal/world"
)

// Pipeline is the resumable form of Discover: feed it observation batches as
// they arrive and ask for the discovery Result at any point. The output is
// byte-identical to running batch Discover over the full concatenated trace
// (pinned by TestPipelineMatchesBatch), but each Extend costs O(batch), not
// O(history):
//
//   - the movement graph folds forward one observation at a time, through
//     the same observe step BuildGraph uses;
//   - a stationarity flag depends only on the look-back window, so it is
//     final the moment it is computed, and a stay run is final as soon as a
//     non-stationary observation closes it — only the open tail run is
//     rebuilt per Result;
//   - the buffer keeps just the observations still reachable by the window,
//     the open run, and the two-observation graph-fold context, so resident
//     trace state is O(window + open run), not O(history).
//
// The merge pass still runs per Result, but over stay segments (hundreds),
// not observations (millions), and it is pruned and parallel (see
// mergeSegments). A Pipeline is not safe for concurrent use.
type Pipeline struct {
	p Params

	n       int       // observations consumed so far
	firstAt time.Time // timestamp of the very first observation (segment clamp)

	buf  []trace.GSMObservation // retained tail of the trace
	base int                    // global index of buf[0]

	j      int                  // global index of the stationarity window's left edge
	counts map[world.CellID]int // distinct-cell counts inside the window

	g *Graph

	segs     []Segment // finalized stay segments, in trace order
	runStart int       // global index where the open stationary run began, -1 when none
}

// NewPipeline returns an empty pipeline; its Result equals Discover(nil, p).
func NewPipeline(p Params) *Pipeline {
	return &Pipeline{
		p:        p,
		counts:   map[world.CellID]int{},
		g:        &Graph{nodes: make(map[world.CellID]*node)},
		runStart: -1,
	}
}

// Params returns the discovery parameters the pipeline was built with.
func (pl *Pipeline) Params() Params { return pl.p }

// Len returns the number of observations consumed so far.
func (pl *Pipeline) Len() int { return pl.n }

// Extend consumes the next batch of the trace. Observations must continue
// the time order of everything consumed before.
func (pl *Pipeline) Extend(obs []trace.GSMObservation) {
	for _, o := range obs {
		pl.extendOne(o)
	}
	pl.prune()
}

func (pl *Pipeline) extendOne(o trace.GSMObservation) {
	i := pl.n
	if i == 0 {
		pl.firstAt = o.At
	}
	pl.buf = append(pl.buf, o)
	pl.n++

	// Graph fold: the same step BuildGraph applies at index i.
	var prev, prev2 *trace.GSMObservation
	if i >= 1 {
		prev = &pl.buf[i-1-pl.base]
	}
	if i >= 2 {
		prev2 = &pl.buf[i-2-pl.base]
	}
	pl.g.observe(prev2, prev, o, pl.p)

	// Stationarity: the same sliding window as segmentStays, carried across
	// batches.
	pl.counts[o.Cell]++
	for pl.buf[pl.j-pl.base].At.Before(o.At.Add(-pl.p.Window)) {
		c := pl.buf[pl.j-pl.base].Cell
		pl.counts[c]--
		if pl.counts[c] == 0 {
			delete(pl.counts, c)
		}
		pl.j++
	}
	stationary := len(pl.counts) <= pl.p.MaxCellsInWindow

	// Run tracking: flags are final, so a run closes for good at the first
	// non-stationary observation after it.
	if stationary {
		if pl.runStart < 0 {
			pl.runStart = i
		}
	} else if pl.runStart >= 0 {
		if seg, ok := pl.segment(pl.runStart, i-1); ok {
			pl.segs = append(pl.segs, seg)
		}
		pl.runStart = -1
	}
}

// segment builds the stay segment for the buffered run [rs, re] (global
// indices), applying the same start pull-back, first-observation clamp, and
// MinStay filter as segmentStays. ok is false when the stay is too short.
func (pl *Pipeline) segment(rs, re int) (Segment, bool) {
	start := pl.buf[rs-pl.base].At.Add(-pl.p.Window / 2)
	if start.Before(pl.firstAt) {
		start = pl.firstAt
	}
	end := pl.buf[re-pl.base].At
	if end.Sub(start) < pl.p.MinStay {
		return Segment{}, false
	}
	seg := Segment{
		Start: start, End: end,
		Cells:   map[world.CellID]struct{}{},
		dwellBy: map[world.CellID]int{},
	}
	for m := rs; m <= re; m++ {
		c := pl.buf[m-pl.base].Cell
		seg.Cells[c] = struct{}{}
		seg.dwellBy[c]++
	}
	return seg, true
}

// prune drops buffered observations no longer reachable by the stationarity
// window, the open run, or the graph fold's two-observation context. Append
// reallocations release the dropped prefix over time, keeping residency
// proportional to the window plus the open run rather than the history.
func (pl *Pipeline) prune() {
	keep := pl.n - 2
	if pl.j < keep {
		keep = pl.j
	}
	if pl.runStart >= 0 && pl.runStart < keep {
		keep = pl.runStart
	}
	if keep > pl.base {
		pl.buf = pl.buf[keep-pl.base:]
		pl.base = keep
	}
}

// FinalSegments returns the finalized stay segments in trace order. The
// slice is append-only: once a stationary run is closed by a non-stationary
// observation its segment is final — identical to what batch Discover would
// produce for any trace extending the consumed prefix — so callers may index
// into it across Extends to detect newly completed stays. The returned slice
// is owned by the pipeline; callers must not mutate it.
func (pl *Pipeline) FinalSegments() []Segment { return pl.segs }

// OpenStay reports the candidate stay bounds of the still-open stationary
// run, with the same start pull-back and first-observation clamp a finalized
// segment gets. ok is true only when the run already satisfies MinStay — the
// earliest moment the eventual segment's Start is guaranteed: the run index
// is fixed when the run opens, so Start never changes afterwards, while End
// keeps extending until a non-stationary observation closes the run. O(1).
func (pl *Pipeline) OpenStay() (start, end time.Time, ok bool) {
	if pl.runStart < 0 {
		return time.Time{}, time.Time{}, false
	}
	start = pl.buf[pl.runStart-pl.base].At.Add(-pl.p.Window / 2)
	if start.Before(pl.firstAt) {
		start = pl.firstAt
	}
	end = pl.buf[pl.n-1-pl.base].At
	return start, end, end.Sub(start) >= pl.p.MinStay
}

// OpenSegment materializes the open stationary run's candidate segment —
// the same open tail Result folds into the merge pass. ok is false when no
// run is open or it is still shorter than MinStay. Costs O(open run).
func (pl *Pipeline) OpenSegment() (Segment, bool) {
	if pl.runStart < 0 {
		return Segment{}, false
	}
	return pl.segment(pl.runStart, pl.n-1)
}

// Result runs the merge pass over the finalized segments plus the open tail
// run and returns what batch Discover would produce for the full consumed
// trace. The pipeline is left intact: Result can be called after every
// Extend, and the graph in the returned Result keeps growing with it.
func (pl *Pipeline) Result() *Result {
	segs := pl.segs
	if pl.runStart >= 0 {
		if tail, ok := pl.segment(pl.runStart, pl.n-1); ok {
			all := make([]Segment, len(pl.segs), len(pl.segs)+1)
			copy(all, pl.segs)
			segs = append(all, tail)
		}
	}
	return &Result{Places: mergeSegments(segs, pl.g, pl.p), Segments: segs, Graph: pl.g}
}
