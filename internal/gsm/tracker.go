package gsm

import (
	"time"

	"repro/internal/trace"
	"repro/internal/world"
)

// EventKind distinguishes arrival from departure events.
type EventKind int

// Tracker event kinds.
const (
	Arrival EventKind = iota + 1
	Departure
)

// String returns "arrival" or "departure".
func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Departure:
		return "departure"
	default:
		return "unknown"
	}
}

// Event is an arrival at or departure from a known place, as detected
// online.
type Event struct {
	Kind    EventKind
	PlaceID int
	At      time.Time
}

// Tracker recognizes visits to already-discovered places from a live GSM
// stream. After GCA discovery runs once (possibly on the cloud), "mobile
// service can track user's visit in those places" (paper Section 2.3.1) —
// this is that tracking.
//
// Recognition uses a sliding window of recent serving cells with hysteresis:
// a place is entered when most of the window matches its cell set, and left
// when almost none does.
type Tracker struct {
	placeCells map[int]map[world.CellID]struct{}

	windowSize   int
	enterMatches int
	exitMatches  int

	window  []trace.GSMObservation
	current int // -1 when at no known place
}

// NewTracker builds a tracker over the discovered places.
func NewTracker(places []*Place) *Tracker {
	t := &Tracker{
		placeCells:   make(map[int]map[world.CellID]struct{}, len(places)),
		windowSize:   8,
		enterMatches: 6,
		exitMatches:  2,
		current:      -1,
	}
	for _, p := range places {
		t.placeCells[p.ID] = p.AllCells
	}
	return t
}

// Current returns the place the tracker believes the user is at, or -1.
func (t *Tracker) Current() int { return t.current }

// Observe feeds one observation and returns any arrival/departure events it
// triggers (0, 1, or 2 — a direct place-to-place transition yields both).
func (t *Tracker) Observe(o trace.GSMObservation) []Event {
	t.window = append(t.window, o)
	if len(t.window) > t.windowSize {
		t.window = t.window[1:]
	}
	if len(t.window) < t.windowSize {
		return nil
	}

	matches := func(placeID int) int {
		cells := t.placeCells[placeID]
		n := 0
		for _, w := range t.window {
			if _, ok := cells[w.Cell]; ok {
				n++
			}
		}
		return n
	}

	var events []Event

	// Departure check first.
	if t.current >= 0 && matches(t.current) <= t.exitMatches {
		events = append(events, Event{Kind: Departure, PlaceID: t.current, At: o.At})
		t.current = -1
	}

	// Arrival check: best-matching place above the enter bound.
	best, bestMatches := -1, 0
	for id := range t.placeCells {
		if id == t.current {
			continue
		}
		if m := matches(id); m > bestMatches || (m == bestMatches && best >= 0 && id < best) {
			best, bestMatches = id, m
		}
	}
	if best >= 0 && bestMatches >= t.enterMatches && best != t.current {
		if t.current >= 0 {
			events = append(events, Event{Kind: Departure, PlaceID: t.current, At: o.At})
		}
		events = append(events, Event{Kind: Arrival, PlaceID: best, At: o.At})
		t.current = best
	}
	return events
}
