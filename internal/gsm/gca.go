package gsm

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/world"
)

// Visit is one arrival/departure interval at a discovered place.
type Visit struct {
	Arrive time.Time
	Depart time.Time
}

// Duration returns the visit length.
func (v Visit) Duration() time.Duration { return v.Depart.Sub(v.Arrive) }

// Place is a discovered place: a Cell-ID signature plus the visits observed.
type Place struct {
	ID int
	// Signature is the top cells (by dwell) identifying the place, the
	// P_i = {c1..c5} of paper Section 2.1.1.
	Signature []world.CellID
	// AllCells is the full cell set observed across visits.
	AllCells map[world.CellID]struct{}
	Visits   []Visit
}

// TotalDwell sums all visit durations.
func (p *Place) TotalDwell() time.Duration {
	var d time.Duration
	for _, v := range p.Visits {
		d += v.Duration()
	}
	return d
}

// HasCell reports whether the cell belongs to the place's observed set.
func (p *Place) HasCell(c world.CellID) bool {
	_, ok := p.AllCells[c]
	return ok
}

// Segment is a maximal stationary run in the trace: one candidate place
// visit before merging.
type Segment struct {
	Start, End time.Time
	Cells      map[world.CellID]struct{}
	dwellBy    map[world.CellID]int
}

// Result is the output of GCA discovery.
type Result struct {
	Places   []*Place
	Segments []Segment
	Graph    *Graph
}

// Discover runs GCA offline over a time-ordered GSM trace: stationarity
// segmentation by cell diversity, then segment merging via oscillation-
// expanded signature overlap. This is the computation the mobile service
// offloads to the cloud instance (paper Section 2.3.1).
func Discover(obs []trace.GSMObservation, p Params) *Result {
	g := BuildGraph(obs, p)
	segs := segmentStays(obs, p)
	places := mergeSegments(segs, g, p)
	return &Result{Places: places, Segments: segs, Graph: g}
}

// segmentStays finds maximal runs where the user's cell diversity within the
// look-back window stays at or below the stationarity bound, and keeps those
// lasting at least MinStay.
func segmentStays(obs []trace.GSMObservation, p Params) []Segment {
	if len(obs) == 0 {
		return nil
	}
	stationary := make([]bool, len(obs))
	j := 0
	counts := map[world.CellID]int{}
	for i, o := range obs {
		counts[o.Cell]++
		for obs[j].At.Before(o.At.Add(-p.Window)) {
			counts[obs[j].Cell]--
			if counts[obs[j].Cell] == 0 {
				delete(counts, obs[j].Cell)
			}
			j++
		}
		stationary[i] = len(counts) <= p.MaxCellsInWindow
	}

	var segs []Segment
	i := 0
	for i < len(obs) {
		if !stationary[i] {
			i++
			continue
		}
		k := i
		for k+1 < len(obs) && stationary[k+1] {
			k++
		}
		// The window lags the true arrival: by the time diversity drops, the
		// user has already dwelt ~Window at the place. Pull the start back.
		start := obs[i].At.Add(-p.Window / 2)
		if start.Before(obs[0].At) {
			start = obs[0].At
		}
		end := obs[k].At
		if end.Sub(start) >= p.MinStay {
			seg := Segment{
				Start: start, End: end,
				Cells:   map[world.CellID]struct{}{},
				dwellBy: map[world.CellID]int{},
			}
			for m := i; m <= k; m++ {
				seg.Cells[obs[m].Cell] = struct{}{}
				seg.dwellBy[obs[m].Cell]++
			}
			segs = append(segs, seg)
		}
		i = k + 1
	}
	return segs
}

// expandedWeights returns the segment's dwell-weighted cell vector grown by
// oscillation partners at a discounted weight. The expansion canonicalizes
// signatures across visits that happened to camp on different layer/operator
// cells of the same place; the dwell weighting keeps the comparison anchored
// on each place's dominant serving cells.
func expandedWeights(seg Segment, g *Graph, p Params) map[world.CellID]float64 {
	out := make(map[world.CellID]float64, len(seg.dwellBy)*2)
	for c, d := range seg.dwellBy {
		out[c] += float64(d)
		for _, partner := range g.OscillationPartners(c, p.MinBounceWeight) {
			out[partner] += float64(d) * 0.6
		}
	}
	return out
}

// cosine returns the cosine similarity of two weighted cell vectors.
func cosine(a, b map[world.CellID]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for _, w := range a {
		na += w * w
	}
	for _, w := range b {
		nb += w * w
	}
	for c, wa := range a {
		if wb, ok := b[c]; ok {
			dot += wa * wb
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// mergeSegments unions stay segments whose oscillation-expanded dwell
// vectors are similar, producing one Place per union class.
//
// The pair comparison is pruned with an inverted cell→segment index: cosine
// is nonzero only when two vectors share at least one expanded cell, so for
// a positive MergeOverlap only the pairs the index yields need scoring. The
// surviving comparisons fan out across a goroutine pool. The resulting
// partition — and therefore the output — is identical to the quadratic
// reference kept below (pinned by TestMergePrunedMatchesQuadratic): places
// depend only on which segments end up in the same union class, never on
// the order unions happen.
func mergeSegments(segs []Segment, g *Graph, p Params) []*Place {
	n := len(segs)
	if n == 0 {
		return nil
	}
	expanded := make([]map[world.CellID]float64, n)
	for i, s := range segs {
		expanded[i] = expandedWeights(s, g, p)
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	if p.MergeOverlap <= 0 {
		// cosine is never negative, so a non-positive threshold merges every
		// pair; the candidate index (which only yields pairs sharing a cell)
		// would wrongly keep disjoint segments apart.
		for i := 1; i < n; i++ {
			union(0, i)
		}
	} else {
		for _, pr := range similarPairs(expanded, p.MergeOverlap) {
			union(pr[0], pr[1])
		}
	}

	return groupPlaces(segs, find, p)
}

// similarPairs returns every index pair whose cosine similarity meets the
// threshold (which must be positive). Candidates come from an inverted
// expanded-cell → segment index; the cosine evaluations are spread over a
// goroutine fan-out in deterministic chunks.
func similarPairs(expanded []map[world.CellID]float64, threshold float64) [][2]int {
	byCell := map[world.CellID][]int{}
	for i, vec := range expanded {
		for c := range vec {
			byCell[c] = append(byCell[c], i)
		}
	}
	// Collect candidate pairs, deduped across cells. Index lists are in
	// ascending order by construction, so i < k in every pair.
	seen := map[[2]int]struct{}{}
	var pairs [][2]int
	for _, ids := range byCell {
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				key := [2]int{ids[a], ids[b]}
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				pairs = append(pairs, key)
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}

	keep := make([]bool, len(pairs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	const chunk = 64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				end := int(cursor.Add(chunk))
				start := end - chunk
				if start >= len(pairs) {
					return
				}
				if end > len(pairs) {
					end = len(pairs)
				}
				for idx := start; idx < end; idx++ {
					pr := pairs[idx]
					keep[idx] = cosine(expanded[pr[0]], expanded[pr[1]]) >= threshold
				}
			}
		}()
	}
	wg.Wait()

	out := pairs[:0]
	for idx, ok := range keep {
		if ok {
			out = append(out, pairs[idx])
		}
	}
	return out
}

// mergeSegmentsQuadratic is the original all-pairs merge pass, kept as the
// correctness reference for the pruned+parallel mergeSegments.
func mergeSegmentsQuadratic(segs []Segment, g *Graph, p Params) []*Place {
	n := len(segs)
	if n == 0 {
		return nil
	}
	expanded := make([]map[world.CellID]float64, n)
	for i, s := range segs {
		expanded[i] = expandedWeights(s, g, p)
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if find(i) == find(k) {
				continue
			}
			if cosine(expanded[i], expanded[k]) >= p.MergeOverlap {
				union(i, k)
			}
		}
	}

	return groupPlaces(segs, find, p)
}

// groupPlaces materializes one Place per union class, ordered by first
// visit. The output depends only on the partition find induces.
func groupPlaces(segs []Segment, find func(int) int, p Params) []*Place {
	groups := map[int][]int{}
	for i := range segs {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	// Order places by first visit for stable IDs.
	sort.Slice(roots, func(a, b int) bool {
		return segs[groups[roots[a]][0]].Start.Before(segs[groups[roots[b]][0]].Start)
	})

	var places []*Place
	for id, root := range roots {
		members := groups[root]
		pl := &Place{ID: id, AllCells: map[world.CellID]struct{}{}}
		dwell := map[world.CellID]int{}
		for _, m := range members {
			seg := segs[m]
			pl.Visits = append(pl.Visits, Visit{Arrive: seg.Start, Depart: seg.End})
			for c := range seg.Cells {
				pl.AllCells[c] = struct{}{}
			}
			for c, d := range seg.dwellBy {
				dwell[c] += d
			}
		}
		sort.Slice(pl.Visits, func(a, b int) bool { return pl.Visits[a].Arrive.Before(pl.Visits[b].Arrive) })
		pl.Signature = topCells(dwell, p.SignatureSize)
		places = append(places, pl)
	}
	return places
}

func topCells(dwell map[world.CellID]int, k int) []world.CellID {
	type cd struct {
		c world.CellID
		d int
	}
	all := make([]cd, 0, len(dwell))
	for c, d := range dwell {
		all = append(all, cd{c, d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].c.String() < all[j].c.String()
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]world.CellID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].c
	}
	return out
}
