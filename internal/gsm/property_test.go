package gsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/world"
)

// genTrace builds a random but structured trace: alternating stays (small
// oscillation sets) and moves (fresh cell runs).
func genTrace(seed int64) []trace.GSMObservation {
	r := rand.New(rand.NewSource(seed))
	var cids []int
	nextCell := 1000
	stays := 1 + r.Intn(5)
	for s := 0; s < stays; s++ {
		// Stay: oscillate among 1-3 cells for 15-90 minutes.
		setSize := 1 + r.Intn(3)
		set := make([]int, setSize)
		for i := range set {
			nextCell++
			set[i] = nextCell
		}
		for m := 0; m < 15+r.Intn(75); m++ {
			cids = append(cids, set[r.Intn(setSize)])
		}
		// Move: 10-30 fresh cells.
		for m := 0; m < 10+r.Intn(20); m++ {
			nextCell++
			cids = append(cids, nextCell)
		}
	}
	return mkTrace(cids...)
}

func TestDiscoverInvariants(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		res := Discover(genTrace(seed), p)
		total := 0
		for _, pl := range res.Places {
			total += len(pl.Visits)
			// Visits sorted, positive, at least MinStay dwell overall.
			for i, v := range pl.Visits {
				if !v.Depart.After(v.Arrive) {
					return false
				}
				if i > 0 && v.Arrive.Before(pl.Visits[i-1].Arrive) {
					return false
				}
			}
			// Signature drawn from observed cells.
			for _, c := range pl.Signature {
				if !pl.HasCell(c) {
					return false
				}
			}
			if len(pl.Signature) > p.SignatureSize {
				return false
			}
		}
		// Every segment is assigned to exactly one place.
		return total == len(res.Segments)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSegmentsWithinTraceSpan(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		obs := genTrace(seed)
		if len(obs) == 0 {
			return true
		}
		segs := segmentStays(obs, p)
		for _, s := range segs {
			if s.Start.Before(obs[0].At) || s.End.After(obs[len(obs)-1].At) {
				return false
			}
			if s.End.Sub(s.Start) < p.MinStay {
				return false
			}
			if len(s.Cells) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(w1, w2, w3 uint8) bool {
		x := map[world.CellID]float64{cell(1): float64(w1%50) + 1, cell(2): float64(w2 % 50)}
		y := map[world.CellID]float64{cell(2): float64(w3%50) + 1, cell(3): 5}
		s1 := cosine(x, y)
		s2 := cosine(y, x)
		if s1 != s2 {
			return false
		}
		if s1 < 0 || s1 > 1.0000001 {
			return false
		}
		// Self-similarity is 1.
		return cosine(x, x) > 0.999999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		obs := genTrace(seed)
		g := BuildGraph(obs, DefaultParams())
		for _, a := range g.Cells() {
			for _, b := range g.Cells() {
				if g.EdgeWeight(a, b) != g.EdgeWeight(b, a) {
					return false
				}
				if g.BounceWeight(a, b) != g.BounceWeight(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTrackerNeverPanicsOnArbitraryStream(t *testing.T) {
	// Feed the tracker random observations against places from a different
	// trace: no panics, alternation preserved.
	f := func(seedA, seedB int64) bool {
		res := Discover(genTrace(seedA), DefaultParams())
		tr := NewTracker(res.Places)
		open := map[int]bool{}
		for i, o := range genTrace(seedB) {
			_ = i
			for _, ev := range tr.Observe(o) {
				switch ev.Kind {
				case Arrival:
					if open[ev.PlaceID] {
						return false
					}
					open[ev.PlaceID] = true
				case Departure:
					if !open[ev.PlaceID] {
						return false
					}
					open[ev.PlaceID] = false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
