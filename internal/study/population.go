package study

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/world"
)

// ParticipantPlan is the deterministic geometry-and-routine draw for one
// cohort member: where they live and work, whether those venues have WiFi,
// how fast they travel, and which public venues they frequent.
//
// The plan is pure data — it references public venues by index into the
// venue slice it was drawn against (the world's venues before any
// per-participant additions) rather than by pointer, so the same plan can be
// realized either by mutating a shared world (the deployment study) or as
// standalone venues that never touch it (the load harness's lazy per-user
// population, which synthesizes users on demand and must not reindex a world
// shared across goroutines).
type ParticipantPlan struct {
	ID       string
	HomePos  geo.LatLng
	WorkPos  geo.LatLng
	HomeWiFi bool
	WorkWiFi bool
	SpeedMPS float64
	// HauntIdx indexes into the public-venue slice the plan was drawn
	// against.
	HauntIdx []int
}

// PlanParticipant draws participant i's plan from r.
//
// Draw-order contract (pinned by TestPlanParticipantGolden): exactly seven
// Float64 draws — home point (2), work point (2), home WiFi, work WiFi,
// speed — followed by one Perm(publicCount). The count never depends on the
// draw outcomes or on WiFi coverage, so sweeping WiFiVenueFraction (the
// India-vs-Switzerland ablation) compares the same cohort, and a caller with
// a per-participant derived RNG stream gets the same plan regardless of
// which other participants it generates.
func PlanParticipant(r *rand.Rand, wc world.Config, hauntsPer, publicCount, i int) ParticipantPlan {
	p := ParticipantPlan{ID: fmt.Sprintf("u%02d", i+1)}
	p.HomePos = randomPoint(wc, r)
	p.WorkPos = randomPoint(wc, r)
	p.HomeWiFi = r.Float64() < wc.WiFiVenueFraction
	p.WorkWiFi = r.Float64() < 0.8
	p.SpeedMPS = 6 + r.Float64()*3
	perm := r.Perm(publicCount)
	n := hauntsPer
	if n > len(perm) {
		n = len(perm)
	}
	if n < 0 {
		n = 0
	}
	p.HauntIdx = perm[:n:n]
	return p
}
