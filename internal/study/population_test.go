package study

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/world"
)

// refPlan replicates the participant loop exactly as it was written inline
// in buildParticipants before PlanParticipant was extracted. It is the golden
// reference: any change to PlanParticipant's draw order or arithmetic shows
// up as a divergence from this copy and therefore as a change to every
// seeded study result.
type refPlan struct {
	id                 string
	homePos, workPos   geo.LatLng
	homeWiFi, workWiFi bool
	speed              float64
	hauntIdx           []int
}

func refPlans(r *rand.Rand, wc world.Config, hauntsPer, publicCount, participants int) []refPlan {
	plans := make([]refPlan, 0, participants)
	for i := 0; i < participants; i++ {
		p := refPlan{
			id:       fmtID(i),
			homePos:  refRandomPoint(wc, r),
			workPos:  refRandomPoint(wc, r),
			homeWiFi: r.Float64() < wc.WiFiVenueFraction,
			workWiFi: r.Float64() < 0.8,
			speed:    6 + r.Float64()*3,
		}
		for _, j := range r.Perm(publicCount) {
			if len(p.hauntIdx) >= hauntsPer {
				break
			}
			p.hauntIdx = append(p.hauntIdx, j)
		}
		plans = append(plans, p)
	}
	return plans
}

func fmtID(i int) string {
	// fmt.Sprintf("u%02d", i+1) without fmt, to keep the reference copy
	// obviously side-effect free.
	n := i + 1
	if n < 10 {
		return "u0" + string(rune('0'+n))
	}
	out := []byte{'u'}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(append(out, digits...))
}

func refRandomPoint(wc world.Config, r *rand.Rand) geo.LatLng {
	dx := (r.Float64()*2 - 1) * wc.ExtentMeters
	dy := (r.Float64()*2 - 1) * wc.ExtentMeters
	return geo.Offset(geo.Offset(wc.Origin, 0, dy), 90, dx)
}

// TestPlanParticipantGolden pins the extracted generator to the historical
// inline loop, byte-identically, across seeds and haunt counts.
func TestPlanParticipantGolden(t *testing.T) {
	wc := DefaultConfig().World
	check := func(seed int64, hauntsPerRaw, publicRaw uint8) bool {
		hauntsPer := int(hauntsPerRaw % 12)
		publicCount := int(publicRaw%40) + 1
		participants := 20

		ref := refPlans(rand.New(rand.NewSource(seed)), wc, hauntsPer, publicCount, participants)

		r := rand.New(rand.NewSource(seed))
		for i := 0; i < participants; i++ {
			got := PlanParticipant(r, wc, hauntsPer, publicCount, i)
			want := ref[i]
			if got.ID != want.id ||
				got.HomePos != want.homePos || got.WorkPos != want.workPos ||
				got.HomeWiFi != want.homeWiFi || got.WorkWiFi != want.workWiFi ||
				got.SpeedMPS != want.speed {
				t.Logf("participant %d: got %+v want %+v", i, got, want)
				return false
			}
			if len(got.HauntIdx) != len(want.hauntIdx) {
				t.Logf("participant %d: haunt count %d != %d", i, len(got.HauntIdx), len(want.hauntIdx))
				return false
			}
			for k := range got.HauntIdx {
				if got.HauntIdx[k] != want.hauntIdx[k] {
					t.Logf("participant %d: haunt %d: %d != %d", i, k, got.HauntIdx[k], want.hauntIdx[k])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildParticipantsUsesPlans pins the full cohort builder on the default
// study configuration: venue geometry, haunt sets, and speeds must match the
// reference plan realized against the same world.
func TestBuildParticipantsUsesPlans(t *testing.T) {
	cfg := DefaultConfig()
	w := world.Generate(cfg.World, rand.New(rand.NewSource(cfg.Seed)))
	public := append([]*world.Venue(nil), w.Venues...)

	ref := refPlans(rand.New(rand.NewSource(cfg.Seed+11)), cfg.World, cfg.HauntsPerParticipant, len(public), cfg.Participants)

	agents := buildParticipants(w, cfg, rand.New(rand.NewSource(cfg.Seed+11)))
	if len(agents) != len(ref) {
		t.Fatalf("got %d agents, want %d", len(agents), len(ref))
	}
	for i, a := range agents {
		want := ref[i]
		if a.ID != want.id {
			t.Fatalf("agent %d: ID %q != %q", i, a.ID, want.id)
		}
		if a.Home.Center != want.homePos || a.Work.Center != want.workPos {
			t.Fatalf("agent %s: venue centers moved", a.ID)
		}
		if a.Home.HasWiFi != want.homeWiFi || a.Work.HasWiFi != want.workWiFi {
			t.Fatalf("agent %s: WiFi flags changed", a.ID)
		}
		if a.SpeedMPS != want.speed {
			t.Fatalf("agent %s: speed %v != %v", a.ID, a.SpeedMPS, want.speed)
		}
		if len(a.Haunts) != len(want.hauntIdx) {
			t.Fatalf("agent %s: %d haunts, want %d", a.ID, len(a.Haunts), len(want.hauntIdx))
		}
		for k, v := range a.Haunts {
			if v != public[want.hauntIdx[k]] {
				t.Fatalf("agent %s: haunt %d is %s, want %s", a.ID, k, v.ID, public[want.hauntIdx[k]].ID)
			}
		}
	}
}
