package study

import (
	"fmt"
	"io"
)

// WriteReport renders the study outcome in the shape of the paper's
// Section 4, with the paper's own numbers alongside for comparison.
func WriteReport(w io.Writer, res *Result) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("PMWare deployment study: %d participants, %d days\n\n",
		len(res.Participants), res.Config.Days); err != nil {
		return err
	}
	_ = p("places discovered: %-4d (paper: 123)\n", res.TotalDiscovered)
	_ = p("places tagged:     %-4d (paper: 85, ~70%%)\n\n", res.TotalTagged)

	line := func(name string, r interface {
		Rates() (float64, float64, float64)
		Evaluable() int
	}, missed int) {
		c, m, d := r.Rates()
		_ = p("%-22s evaluable=%-4d correct=%6.2f%%  merged=%6.2f%%  divided=%6.2f%%  missed=%d\n",
			name, r.Evaluable(), c*100, m*100, d*100, missed)
	}
	line("GSM + opportunistic WiFi", res.Fused, res.Fused.Missed)
	line("GSM only (ablation)", res.GSMOnly, res.GSMOnly.Missed)
	line("WiFi only (ablation)", res.WiFiOnly, res.WiFiOnly.Missed)
	_ = p("%-22s (paper, GSM+WiFi: 62 evaluable, 79.03%% / 14.52%% / 6.45%%)\n\n", "")

	l, d := res.LikeRatio()
	_ = p("PlaceADs: %d likes, %d dislikes -> %.1f : %.1f of 20 (paper: 17 : 3)\n",
		res.Likes, res.Dislikes, l, d)

	social := false
	for _, pr := range res.Participants {
		if pr.Encounters > 0 {
			social = true
		}
	}
	_ = p("\nper participant:\n")
	if social {
		_ = p("%-5s %9s %7s %7s %8s %10s %9s\n", "user", "disc.", "tagged", "truth", "ads", "battery(h)", "meets")
	} else {
		_ = p("%-5s %9s %7s %7s %8s %10s\n", "user", "disc.", "tagged", "truth", "ads", "battery(h)")
	}
	for _, pr := range res.Participants {
		var err error
		if social {
			err = p("%-5s %9d %7d %7d %8d %10.0f %9d\n",
				pr.ID, pr.DiscoveredPlaces, pr.TaggedPlaces, pr.TrueVenues, pr.Impressions, pr.ProjectedLifeHours, pr.Encounters)
		} else {
			err = p("%-5s %9d %7d %7d %8d %10.0f\n",
				pr.ID, pr.DiscoveredPlaces, pr.TaggedPlaces, pr.TrueVenues, pr.Impressions, pr.ProjectedLifeHours)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
