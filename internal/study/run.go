package study

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/lifelog"
	"repro/internal/apps/meetup"
	"repro/internal/apps/placeads"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/mobility"
	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

// directCloud is an in-process core.CloudAPI over the shared store — the
// study's default transport (the HTTP path is exercised by the cloud
// package's integration tests and by cmd/pmware-sim -http).
type directCloud struct {
	store  *cloud.Store
	cells  *cloud.CellDatabase
	params gsm.Params
	userID string
}

var _ core.CloudAPI = (*directCloud)(nil)

func (d *directCloud) DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error) {
	res := gsm.Discover(obs, d.params)
	wire := make([]cloud.PlaceWire, 0, len(res.Places))
	for _, p := range res.Places {
		wire = append(wire, cloud.PlaceToWire(p))
	}
	d.store.SetPlaces(d.userID, wire)
	return res.Places, nil
}

func (d *directCloud) SyncProfile(p *profile.DayProfile) error {
	return d.store.PutProfile(d.userID, p)
}

func (d *directCloud) GeolocateCell(id world.CellID) (geo.LatLng, float64, error) {
	e, ok := d.cells.Lookup(id)
	if !ok {
		return geo.LatLng{}, 0, fmt.Errorf("study: unknown cell %s", id)
	}
	return geo.LatLng{Lat: e.Lat, Lng: e.Lng}, e.AccuracyMeters, nil
}

// runParticipant simulates one participant end to end and scores the three
// discovery pipelines.
func runParticipant(
	cfg Config,
	w *world.World,
	a *mobility.Agent,
	it *mobility.Itinerary,
	idx int,
	store *cloud.Store,
	cells *cloud.CellDatabase,
	directory *placeads.POIDirectory,
	inventory *placeads.Inventory,
	peers map[string]trace.PositionFunc,
) (*ParticipantResult, [3]*eval.Report, error) {
	var reports [3]*eval.Report
	seed := cfg.Seed + int64(1000+idx)

	clock := simclock.New()
	sensors := trace.NewSensors(w, it, cfg.Sensors, rand.New(rand.NewSource(seed)))
	meter := energy.NewMeter(energy.DefaultModel())
	svcCfg := cfg.ServiceTemplate(a.ID)
	if cfg.Social {
		svcCfg.Peers = peers
	}
	var api core.CloudAPI
	if cfg.CloudBaseURL != "" {
		client := cloud.NewClient(cfg.CloudBaseURL, "imei-"+a.ID, a.ID+"@study.example", nil)
		if err := client.Register(); err != nil {
			return nil, reports, fmt.Errorf("study: register %s with cloud: %w", a.ID, err)
		}
		api = client
	} else {
		api = &directCloud{store: store, cells: cells, params: svcCfg.GSMParams, userID: a.ID}
	}
	svc := core.NewService(svcCfg, clock, sensors, meter, api)

	// Every participant runs the packaged life-logging app (building-level,
	// Section 3) plus PlaceADs (area-level).
	logApp := lifelog.New()
	if err := logApp.Attach(svc); err != nil {
		return nil, reports, err
	}
	swiper := &placeads.SimSwiper{
		Directory:      directory,
		TruePosition:   it.PositionAt,
		RelevanceM:     2500,
		RelevantProb:   cfg.RelevantLikeProb,
		IrrelevantProb: cfg.IrrelevantLikeProb,
		Rand:           rand.New(rand.NewSource(seed + 1)),
	}
	adsApp := placeads.New(inventory, directory, swiper)
	if err := adsApp.Attach(svc); err != nil {
		return nil, reports, err
	}
	var meetApp *meetup.App
	if cfg.Social {
		meetApp = meetup.New()
		if err := meetApp.Attach(svc); err != nil {
			return nil, reports, err
		}
	}

	svc.Run(time.Duration(cfg.Days) * 24 * time.Hour)

	// Tagging model: the participant tags ~TaggingProb of discovered places
	// with the label of the dominant true venue.
	tagRand := rand.New(rand.NewSource(seed + 2))
	tagged := 0
	for _, p := range svc.Places() {
		if tagRand.Float64() >= cfg.TaggingProb {
			continue
		}
		if label := dominantVenueLabel(w, it, p); label != "" {
			if err := svc.LabelPlace(p.ID, label); err == nil {
				tagged++
			}
		}
	}

	// Score the three pipelines against diary ground truth.
	truth := truthVisits(a.ID, it, cfg.MinStay)
	fused := eval.Evaluate(toDiscovered(a.ID, svc.Places()), truth, cfg.EvalOverlap)
	gsmOnly := eval.Evaluate(toDiscovered(a.ID, core.UnifyGSM(svc.RawGSMPlaces())), truth, cfg.EvalOverlap)
	wifiOnly := eval.Evaluate(toDiscovered(a.ID, core.UnifyWiFi(svc.RawWiFiPlaces())), truth, cfg.EvalOverlap)
	reports = [3]*eval.Report{fused, gsmOnly, wifiOnly}

	likes, dislikes := adsApp.LikeDislike()
	var centers []geo.LatLng
	for _, p := range svc.Places() {
		centers = append(centers, p.Center)
	}
	encounters := 0
	if meetApp != nil {
		encounters = meetApp.EncounterCount()
	}
	pr := &ParticipantResult{
		ID:                 a.ID,
		DiscoveredPlaces:   len(svc.Places()),
		TaggedPlaces:       tagged,
		TrueVenues:         len(it.VisitedVenueIDs(cfg.MinStay)),
		Report:             fused,
		ReportGSM:          gsmOnly,
		ReportWiFi:         wifiOnly,
		PlaceCenters:       centers,
		Encounters:         encounters,
		Likes:              likes,
		Dislikes:           dislikes,
		Impressions:        len(adsApp.Impressions()),
		EnergySamples:      meter.TotalSamples(),
		ProjectedLifeHours: meter.ProjectedLifeHours(time.Duration(cfg.Days) * 24 * time.Hour),
	}
	return pr, reports, nil
}

// dominantVenueLabel finds the true venue where the discovered place's
// visits spent the most time, returning its name. The participant "knows"
// where they were — this is the diary.
func dominantVenueLabel(w *world.World, it *mobility.Itinerary, p *core.UnifiedPlace) string {
	dwell := map[string]time.Duration{}
	for _, visit := range p.Visits {
		// Sample the itinerary mid-visit at a few points.
		span := visit.Depart.Sub(visit.Arrive)
		for f := 0.2; f < 1.0; f += 0.3 {
			at := visit.Arrive.Add(time.Duration(float64(span) * f))
			if v := it.VenueAt(at); v != nil {
				dwell[v.ID] += span / 3
			}
		}
	}
	best, bestD := "", time.Duration(0)
	for id, d := range dwell {
		if d > bestD {
			best, bestD = id, d
		}
	}
	if best == "" {
		return ""
	}
	if v := w.VenueByID(best); v != nil {
		return v.Name
	}
	return ""
}
