// Package study reproduces the paper's deployment study (Section 4): 16
// participants run the PMWare mobile service packaged with the life-logging
// application plus the PlaceADs connected application for two weeks. The
// study measures how many places PMWare discovers, how many the participants
// tag, the correct/merged/divided discovery rates against diary ground
// truth, and the PlaceADs like:dislike ratio.
//
// The paper reports: 123 places discovered, 85 tagged (~70%), and — over the
// 62 evaluable places — 79.03% correct, 14.52% merged, 6.45% divided, with a
// 17:3 like:dislike ratio.
package study

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/placeads"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

// Config shapes a study run. Start from DefaultConfig.
type Config struct {
	Participants int
	Days         int
	Seed         int64

	// World is the shared city every participant lives in.
	World world.Config
	// HauntsPerParticipant is how many public venues each participant
	// frequents besides home and work.
	HauntsPerParticipant int

	// TaggingProb is the chance a participant tags a discovered place with a
	// semantic label (the paper observed ~70%).
	TaggingProb float64

	// MinStay is the ground-truth place-visit threshold.
	MinStay time.Duration
	// EvalOverlap is the attribution floor for scoring.
	EvalOverlap time.Duration

	// Swiper probabilities for the PlaceADs user model.
	RelevantLikeProb   float64
	IrrelevantLikeProb float64

	// Schedule drives the participants' daily routine.
	Schedule mobility.ScheduleConfig
	// Sensors configures the handset radios.
	Sensors trace.Config
	// Service configures the PMS.
	ServiceTemplate func(userID string) core.Config

	// Social, when set, enables Bluetooth proximity sensing between the
	// participants (via the meetup connected app) and records encounters in
	// the mobility profiles.
	Social bool

	// CloudBaseURL, when non-empty, routes every participant's cloud
	// traffic over HTTP to this PMWare cloud instance instead of the
	// in-process adapter. The endpoint must be a Server from
	// internal/cloud, with a cell database built from the same world seed.
	CloudBaseURL string
}

// DefaultConfig returns the configuration calibrated to reproduce the
// paper's Section 4.
func DefaultConfig() Config {
	wc := world.DefaultConfig()
	// A denser core than the generic default: venues close enough that some
	// share cell signatures, which is what produces the paper's merged
	// places (library vs academic building).
	wc.ExtentMeters = 3200
	wc.PublicVenues = 34
	wc.TowerGridMeters = 500
	wc.TowerRangeMeters = 800
	return Config{
		Participants:         16,
		Days:                 14,
		Seed:                 2014,
		World:                wc,
		HauntsPerParticipant: 7,
		TaggingProb:          0.70,
		MinStay:              10 * time.Minute,
		EvalOverlap:          5 * time.Minute,
		RelevantLikeProb:     0.92,
		IrrelevantLikeProb:   0.25,
		Schedule:             mobility.DefaultScheduleConfig(),
		Sensors:              trace.DefaultConfig(),
		ServiceTemplate:      core.DefaultConfig,
	}
}

// ParticipantResult holds one participant's outcome.
type ParticipantResult struct {
	ID string

	DiscoveredPlaces int
	TaggedPlaces     int
	TrueVenues       int

	Report     *eval.Report
	ReportGSM  *eval.Report // GSM-only ablation
	ReportWiFi *eval.Report // WiFi-only ablation

	// PlaceCenters are the geolocated centers of discovered places (zero
	// values for places the geo service could not resolve).
	PlaceCenters []geo.LatLng
	// Encounters is the number of social encounters recorded (0 unless
	// cfg.Social).
	Encounters         int
	Likes              int
	Dislikes           int
	Impressions        int
	EnergySamples      int
	ProjectedLifeHours float64
}

// Result aggregates the study.
type Result struct {
	Config Config

	// World is the synthetic city the study ran in (for map rendering).
	World *world.World

	Participants []ParticipantResult

	TotalDiscovered int
	TotalTagged     int

	// Fused is the headline pipeline (GSM + opportunistic WiFi).
	Fused *eval.Report
	// GSMOnly and WiFiOnly are the ablation pipelines.
	GSMOnly  *eval.Report
	WiFiOnly *eval.Report

	Likes    int
	Dislikes int
}

// LikeRatio returns likes:dislikes normalized to 20 cards, the paper's
// 17:3 form.
func (r *Result) LikeRatio() (likes20, dislikes20 float64) {
	total := r.Likes + r.Dislikes
	if total == 0 {
		return 0, 0
	}
	return 20 * float64(r.Likes) / float64(total), 20 * float64(r.Dislikes) / float64(total)
}

// Run executes the study.
func Run(cfg Config) (*Result, error) {
	if cfg.Participants <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("study: need positive participants and days")
	}
	w := world.Generate(cfg.World, rand.New(rand.NewSource(cfg.Seed)))

	// The shared cloud instance: direct in-process adapter over one store.
	store := cloud.NewStore(nil)
	cells := cloud.NewCellDatabase(w, 150)

	// Build participants with homes, workplaces, and haunts. The cohort has
	// its own RNG stream so it is identical across world variations (e.g.
	// the WiFi-coverage ablation): venue positions are drawn before any AP
	// installation in Generate, and nothing here depends on the world RNG's
	// post-generation state.
	agents := buildParticipants(w, cfg, rand.New(rand.NewSource(cfg.Seed+11)))

	// Pre-build itineraries so peers' positions are available for social
	// proximity if needed.
	itins := make([]*mobility.Itinerary, len(agents))
	for i, a := range agents {
		it, err := mobility.BuildItinerary(a, w, simclock.Epoch, cfg.Days, cfg.Schedule, rand.New(rand.NewSource(cfg.Seed+int64(100+i))))
		if err != nil {
			return nil, fmt.Errorf("study: itinerary for %s: %w", a.ID, err)
		}
		itins[i] = it
	}

	res := &Result{Config: cfg, World: w}
	var fusedReports, gsmReports, wifiReports []*eval.Report

	directory := placeads.NewPOIDirectory(w)
	inventory := placeads.DefaultInventory()

	for i, a := range agents {
		pr, reports, err := runParticipant(cfg, w, a, itins[i], i, store, cells, directory, inventory, peersFor(agents, itins, i))
		if err != nil {
			return nil, err
		}
		res.Participants = append(res.Participants, *pr)
		res.TotalDiscovered += pr.DiscoveredPlaces
		res.TotalTagged += pr.TaggedPlaces
		res.Likes += pr.Likes
		res.Dislikes += pr.Dislikes
		fusedReports = append(fusedReports, reports[0])
		gsmReports = append(gsmReports, reports[1])
		wifiReports = append(wifiReports, reports[2])
	}
	res.Fused = eval.Merge(fusedReports...)
	res.GSMOnly = eval.Merge(gsmReports...)
	res.WiFiOnly = eval.Merge(wifiReports...)
	return res, nil
}

func buildParticipants(w *world.World, cfg Config, r *rand.Rand) []*mobility.Agent {
	var agents []*mobility.Agent
	public := append([]*world.Venue(nil), w.Venues...)

	// Draw all geometry and routine choices from the shared RNG with a draw
	// count that does not depend on WiFi coverage, so sweeping
	// WiFiVenueFraction (the India-vs-Switzerland ablation) compares the
	// same city and the same participants. AP installation uses per-venue
	// derived RNGs. PlanParticipant owns the draw-order contract; a golden
	// test pins it to this loop's historical behavior.
	plans := make([]ParticipantPlan, 0, cfg.Participants)
	for i := 0; i < cfg.Participants; i++ {
		plans = append(plans, PlanParticipant(r, cfg.World, cfg.HauntsPerParticipant, len(public), i))
	}
	for i, p := range plans {
		// One RNG per venue: the work venue's geometry must not depend on
		// how many APs the home venue installed (WiFi-coverage ablation).
		homeRand := rand.New(rand.NewSource(cfg.Seed + int64(7000+2*i)))
		workRand := rand.New(rand.NewSource(cfg.Seed + int64(7001+2*i)))
		home := w.AddVenue(
			fmt.Sprintf("home-%s", p.ID), fmt.Sprintf("Home of %s", p.ID),
			world.KindHome, p.HomePos, p.HomeWiFi, cfg.World, homeRand)
		work := w.AddVenue(
			fmt.Sprintf("work-%s", p.ID), fmt.Sprintf("Office of %s", p.ID),
			world.KindWorkplace, p.WorkPos, p.WorkWiFi, cfg.World, workRand)
		haunts := make([]*world.Venue, 0, len(p.HauntIdx))
		for _, j := range p.HauntIdx {
			haunts = append(haunts, public[j])
		}
		agents = append(agents, &mobility.Agent{
			ID: p.ID, Home: home, Work: work, SpeedMPS: p.SpeedMPS, Haunts: haunts,
		})
	}
	return agents
}

func randomPoint(wc world.Config, r *rand.Rand) geo.LatLng {
	dx := (r.Float64()*2 - 1) * wc.ExtentMeters
	dy := (r.Float64()*2 - 1) * wc.ExtentMeters
	return geo.Offset(geo.Offset(wc.Origin, 0, dy), 90, dx)
}

// peersFor builds the Bluetooth peer map for participant i: every other
// participant's true position function. Returns nil when social sensing is
// off (the map would never be read).
func peersFor(agents []*mobility.Agent, itins []*mobility.Itinerary, i int) map[string]trace.PositionFunc {
	peers := make(map[string]trace.PositionFunc, len(agents)-1)
	for j, a := range agents {
		if j == i {
			continue
		}
		it := itins[j]
		peers[a.ID] = it.PositionAt
	}
	return peers
}

// truthVisits converts an itinerary into scoring ground truth, with venue
// keys prefixed by participant for global uniqueness.
func truthVisits(agentID string, it *mobility.Itinerary, minStay time.Duration) []eval.TruthVisit {
	var out []eval.TruthVisit
	for _, v := range it.SignificantVisits(minStay) {
		out = append(out, eval.TruthVisit{
			VenueID: agentID + "/" + v.VenueID,
			Start:   v.Arrive,
			End:     v.Depart,
		})
	}
	return out
}

// toDiscovered converts unified places to the scorer's shape, with IDs
// prefixed per participant.
func toDiscovered(agentID string, places []*core.UnifiedPlace) []eval.DiscoveredPlace {
	var out []eval.DiscoveredPlace
	for _, p := range places {
		dp := eval.DiscoveredPlace{ID: agentID + "/" + p.ID}
		for _, v := range p.Visits {
			dp.Visits = append(dp.Visits, eval.Interval{Start: v.Arrive, End: v.Depart})
		}
		out = append(out, dp)
	}
	return out
}
