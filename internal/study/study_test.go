package study

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/world"
)

// smallConfig keeps test runtime reasonable: 4 participants, 5 days.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Participants = 4
	cfg.Days = 5
	return cfg
}

func TestRunValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Participants = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero participants accepted")
	}
	cfg = smallConfig()
	cfg.Days = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative days accepted")
	}
}

func TestRunSmallStudy(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Participants) != 4 {
		t.Fatalf("participants = %d", len(res.Participants))
	}
	if res.TotalDiscovered == 0 {
		t.Fatal("nothing discovered")
	}
	if res.TotalTagged == 0 || res.TotalTagged > res.TotalDiscovered {
		t.Errorf("tagged = %d of %d", res.TotalTagged, res.TotalDiscovered)
	}
	for _, pr := range res.Participants {
		if pr.DiscoveredPlaces == 0 {
			t.Errorf("%s discovered nothing", pr.ID)
		}
		if pr.TrueVenues < 2 {
			t.Errorf("%s visited only %d venues", pr.ID, pr.TrueVenues)
		}
		if pr.EnergySamples == 0 || pr.ProjectedLifeHours <= 0 {
			t.Errorf("%s has no energy accounting", pr.ID)
		}
		if pr.Report == nil || pr.ReportGSM == nil || pr.ReportWiFi == nil {
			t.Fatalf("%s missing reports", pr.ID)
		}
	}
	if res.Likes+res.Dislikes == 0 {
		t.Error("PlaceADs served nothing")
	}
	// Aggregates match the sum of parts.
	sumDisc := 0
	for _, pr := range res.Participants {
		sumDisc += pr.DiscoveredPlaces
	}
	if sumDisc != res.TotalDiscovered {
		t.Errorf("TotalDiscovered %d != sum %d", res.TotalDiscovered, sumDisc)
	}
}

func TestRunDeterminism(t *testing.T) {
	r1, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalDiscovered != r2.TotalDiscovered || r1.Likes != r2.Likes || r1.Dislikes != r2.Dislikes {
		t.Errorf("same seed, different results: %d/%d likes %d/%d",
			r1.TotalDiscovered, r2.TotalDiscovered, r1.Likes, r2.Likes)
	}
	c1, m1, d1 := r1.Fused.Rates()
	c2, m2, d2 := r2.Fused.Rates()
	if c1 != c2 || m1 != m2 || d1 != d2 {
		t.Error("rates differ between identical runs")
	}
}

func TestStudyShapeClaims(t *testing.T) {
	// The paper's qualitative claims must hold even on a small study:
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1. WiFi augmentation does not increase the merge count (it exists to
	// split merged places).
	if res.Fused.Merged > res.GSMOnly.Merged {
		t.Errorf("fusion increased merges: %d > %d", res.Fused.Merged, res.GSMOnly.Merged)
	}
	// 2. WiFi-only never misses fewer venues than the GSM pipelines (WiFi
	// coverage is ~60%; on small cohorts the counts can tie). The full-size
	// gap is asserted by the deployment-study benchmarks.
	if res.WiFiOnly.Missed < res.Fused.Missed {
		t.Errorf("WiFi-only missed fewer venues: %d vs %d", res.WiFiOnly.Missed, res.Fused.Missed)
	}
	// 3. Most evaluable venues are correct in the fused pipeline.
	c, _, _ := res.Fused.Rates()
	if c < 0.5 {
		t.Errorf("fused correct rate %.2f below 0.5", c)
	}
	// 4. Users like most ads (context relevance).
	if res.Likes <= res.Dislikes {
		t.Errorf("likes %d <= dislikes %d", res.Likes, res.Dislikes)
	}
}

func TestLikeRatioNormalization(t *testing.T) {
	r := &Result{Likes: 17, Dislikes: 3}
	l, d := r.LikeRatio()
	if l != 17 || d != 3 {
		t.Errorf("ratio = %v:%v", l, d)
	}
	empty := &Result{}
	if l, d := empty.LikeRatio(); l != 0 || d != 0 {
		t.Error("empty ratio should be 0:0")
	}
}

func TestWriteReport(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteReport(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"places discovered", "GSM + opportunistic WiFi", "PlaceADs", "paper: 123", "per participant", "u01"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunWithSocial(t *testing.T) {
	cfg := smallConfig()
	cfg.Social = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Social mode must not break anything; encounter counts are non-negative
	// and Bluetooth costs battery.
	for _, pr := range res.Participants {
		if pr.Encounters < 0 {
			t.Errorf("%s encounters = %d", pr.ID, pr.Encounters)
		}
	}
	// Compare battery against the asocial run: Bluetooth scanning can only
	// cost energy.
	asocial, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Participants {
		if res.Participants[i].ProjectedLifeHours > asocial.Participants[i].ProjectedLifeHours+1 {
			t.Errorf("%s: social run projects MORE battery (%f vs %f)",
				res.Participants[i].ID,
				res.Participants[i].ProjectedLifeHours,
				asocial.Participants[i].ProjectedLifeHours)
		}
	}
}

func TestRunWithHTTPCloud(t *testing.T) {
	// The full REST stack end to end, small scale.
	w := world.Generate(smallConfig().World, rand.New(rand.NewSource(smallConfig().Seed)))
	store := cloud.NewStore(nil)
	server := cloud.NewServer(store, cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)))
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	cfg := smallConfig()
	cfg.Participants = 2
	cfg.Days = 3
	cfg.CloudBaseURL = ts.URL
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDiscovered == 0 {
		t.Fatal("nothing discovered through HTTP cloud")
	}
	if store.UserCount() != 2 {
		t.Errorf("cloud registered %d users, want 2", store.UserCount())
	}
	// Places must be geolocated through the real endpoint.
	located := 0
	for _, pr := range res.Participants {
		for _, c := range pr.PlaceCenters {
			if !c.IsZero() {
				located++
			}
		}
	}
	if located == 0 {
		t.Error("no place geolocated through HTTP cloud")
	}
}
