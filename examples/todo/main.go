// The Section 2.4 use case: a To-Do application wants reminders when the
// user enters or leaves her workplace, with building-level accuracy, tracked
// between 9 AM and 6 PM. The app frames a request to PMWare, PMWare samples
// the appropriate interfaces, and broadcasts arrival/departure alerts that
// the app turns into reminders.
//
//	go run ./examples/todo
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/todo"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(7))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "bob", Home: home, Work: work, SpeedMPS: 7}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 5, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(8)))
	if err != nil {
		panic(err)
	}

	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(9)))
	meter := energy.NewMeter(energy.DefaultModel())
	svc := core.NewService(core.DefaultConfig("bob"), clock, sensors, meter, nil)

	// Step 1-2 of the use case: the To-Do app frames its request (building
	// granularity, 9 AM - 6 PM window) and registers its intent filter.
	app := todo.New("work")
	app.Add(todo.Item{Text: "review pull requests", OnArrive: true})
	app.Add(todo.Item{Text: "fill the timesheet", OnArrive: false})
	if err := app.Attach(svc); err != nil {
		panic(err)
	}

	// Run two days so PMWare discovers the workplace, then tag it — the
	// human-labelling step that tells the To-Do app which place is "work".
	fmt.Println("day 1-2: PMWare learns the user's places...")
	svc.Run(48 * time.Hour)

	var workPlace *core.UnifiedPlace
	for _, p := range svc.Places() {
		// The workplace is where weekday 9-18 time accumulates; here we tag
		// the second-largest dwell place (the largest is home: nights).
		if workPlace == nil || (p.TotalDwell() > workPlace.TotalDwell()) {
			workPlace = p
		}
	}
	// Find the true second-by-dwell (work).
	var best, second *core.UnifiedPlace
	for _, p := range svc.Places() {
		switch {
		case best == nil || p.TotalDwell() > best.TotalDwell():
			second = best
			best = p
		case second == nil || p.TotalDwell() > second.TotalDwell():
			second = p
		}
	}
	if second == nil {
		fmt.Println("not enough places discovered; try another seed")
		return
	}
	if err := svc.LabelPlace(best.ID, "home"); err != nil {
		panic(err)
	}
	if err := svc.LabelPlace(second.ID, "work"); err != nil {
		panic(err)
	}
	fmt.Printf("user tags %s as home, %s as work\n\n", best.ID, second.ID)

	// Steps 3-5: PMWare keeps sensing; arrival/departure alerts reach the
	// app, which fires reminders.
	fmt.Println("day 3-5: reminders fire on workplace arrivals/departures...")
	svc.Run(72 * time.Hour)

	for _, rem := range app.Reminders() {
		kind := "arriving at"
		if !rem.Item.OnArrive {
			kind = "leaving"
		}
		fmt.Printf("  %s  reminder while %s work: %q\n",
			rem.At.Format("Mon 15:04"), kind, rem.Item.Text)
	}
	fmt.Printf("\n%d reminders from %d place events\n", len(app.Reminders()), app.Events())
}
