// Life-logging demo (paper Section 3, Figure 4): the packaged application
// that visualizes every place PMWare discovers, lets the user validate and
// tag them with semantic labels, and shows fine-grained mobility history —
// stay time per place and visiting days.
//
//	go run ./examples/lifelog
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/lifelog"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(31))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "dev", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 7, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(32)))
	if err != nil {
		panic(err)
	}

	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(33)))
	svc := core.NewService(core.DefaultConfig("dev"), clock, sensors, energy.NewMeter(energy.DefaultModel()), nil)

	app := lifelog.New()
	if err := app.Attach(svc); err != nil {
		panic(err)
	}

	fmt.Println("logging one week of life through PMWare...")
	svc.Run(7 * 24 * time.Hour)

	fmt.Printf("\n%d place-discovery notifications received\n", app.NewPlaceCount())

	// The user validates the two biggest places and tags them (Figure 4.b).
	sums := app.Summaries()
	if len(sums) >= 1 {
		_ = app.Tag(sums[0].ID, "Home")
	}
	if len(sums) >= 2 {
		_ = app.Tag(sums[1].ID, "Workplace")
	}

	fmt.Println("\nmobility history (Figure 4.c):")
	fmt.Print(app.Render())

	fmt.Println("low-accuracy routes between places:")
	for _, rt := range svc.GSMRoutes() {
		fmt.Printf("  gsm-%d: %d cells, used %dx\n", rt.ID, len(rt.Cells), rt.Frequency())
	}
}
