// Prediction demo (paper Section 2.3.2): after two simulated weeks, the
// cloud's analytics and prediction engine answers the paper's three query
// families over the synced mobility profiles:
//
//  1. at what time does the user typically reach home in the evening?
//
//  2. when is the user's next visit to a given place?
//
//  3. how frequently does the user visit a class of places?
//
//     go run ./examples/predictions
package main

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(11))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "eve", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 14, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(12)))
	if err != nil {
		panic(err)
	}

	// Full REST stack: cloud instance over loopback HTTP.
	store := cloud.NewStore(nil)
	server := cloud.NewServer(store, cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)))
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	client := cloud.NewClient(ts.URL, "imei-eve", "eve@example.com", ts.Client())
	if err := client.Register(); err != nil {
		panic(err)
	}

	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(13)))
	svc := core.NewService(core.DefaultConfig("eve"), clock, sensors, energy.NewMeter(energy.DefaultModel()), client)
	svc.Connect(
		core.Requirement{AppID: "logger", Granularity: core.GranularityBuilding},
		core.Filter{Actions: []string{core.ActionNewPlace}},
		func(core.Intent) {},
	)

	fmt.Println("two weeks of life, synced nightly to the cloud instance...")
	svc.Run(14 * 24 * time.Hour)

	// Identify home and work among the discovered places by dwell.
	places := svc.Places()
	if len(places) < 2 {
		fmt.Println("not enough places; try another seed")
		return
	}
	var homeP, workP *core.UnifiedPlace
	for _, p := range places {
		switch {
		case homeP == nil || p.TotalDwell() > homeP.TotalDwell():
			workP = homeP
			homeP = p
		case workP == nil || p.TotalDwell() > workP.TotalDwell():
			workP = p
		}
	}
	_ = svc.LabelPlace(homeP.ID, "home")
	_ = svc.LabelPlace(workP.ID, "work")

	hhmm := func(sec int) string {
		return fmt.Sprintf("%02d:%02d", sec/3600, sec%3600/60)
	}

	// Query 1: typical arrival time.
	for _, q := range []struct{ label, id string }{{"home", homeP.ID}, {"work", workP.ID}} {
		arr, err := client.PredictArrival(q.id)
		if err != nil {
			fmt.Printf("q1 (%s): %v\n", q.label, err)
			continue
		}
		fmt.Printf("q1: typical arrival at %-5s = %s (from %d arrivals)\n",
			q.label, hhmm(arr.TypicalArrivalSec), arr.SampleCount)
	}

	// Query 2: next visit after the study.
	after := simclock.Epoch.AddDate(0, 0, 14)
	next, err := client.PredictNextVisit(workP.ID, after)
	if err != nil {
		panic(err)
	}
	if next.Confident {
		fmt.Printf("q2: next visit to work predicted %s\n", next.NextVisit.Format("Mon Jan 2 15:04"))
	} else {
		fmt.Println("q2: not enough history for a confident prediction")
	}

	// Query 3: visit frequencies.
	for _, q := range []struct{ label, id string }{{"home", homeP.ID}, {"work", workP.ID}} {
		freq, err := client.VisitFrequency(q.id)
		if err != nil {
			panic(err)
		}
		fmt.Printf("q3: %-5s visited %.1f times/week (%d total)\n", q.label, freq.VisitsPerWeek, freq.TotalVisits)
	}

	// Bonus: the k-anonymous aggregate needs >= k users, so with one user it
	// must stay empty — privacy holding by construction.
	agg, err := client.PopularPlaces(3, 400)
	if err != nil {
		panic(err)
	}
	fmt.Printf("popular-places aggregate with 1 user and k=%d: %d clusters (privacy holds)\n",
		agg.K, len(agg.Places))
}
