// Quickstart: run the PMWare mobile service over one simulated day of life
// and print what it discovered — places, visits, routes, and the day's
// mobility profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	// 1. A synthetic city: venues, cell towers, WiFi access points.
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(42))
	w := world.Generate(cfg, r)

	// 2. One resident with a home, an office, and the city's venues as
	// haunts.
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "alice", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}

	// 3. Three days of ground-truth life, and the phone's sensors over it.
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 3, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(43)))
	if err != nil {
		panic(err)
	}
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(44)))

	// 4. The PMWare mobile service, with one connected app watching place
	// events at building granularity.
	clock := simclock.New()
	meter := energy.NewMeter(energy.DefaultModel())
	svc := core.NewService(core.DefaultConfig("alice"), clock, sensors, meter, nil)

	events := 0
	err = svc.Connect(
		core.Requirement{AppID: "demo", Granularity: core.GranularityBuilding},
		core.Filter{Actions: []string{core.ActionPlaceArrival, core.ActionPlaceDeparture, core.ActionNewPlace}},
		func(in core.Intent) {
			events++
			if events <= 8 {
				fmt.Printf("  [intent] %-38s place=%s granularity=%s\n",
					in.Action, in.Place.ID, in.Place.Granularity)
			}
		},
	)
	if err != nil {
		panic(err)
	}

	fmt.Println("running 3 simulated days of PMWare...")
	svc.Run(72 * time.Hour)

	// 5. What the middleware learned.
	fmt.Printf("\ndiscovered %d places (truth: %d venues visited):\n",
		len(svc.Places()), len(it.VisitedVenueIDs(10*time.Minute)))
	for _, p := range svc.Places() {
		fmt.Printf("  %-4s visits=%-3d dwell=%s\n", p.ID, len(p.Visits), p.TotalDwell().Truncate(time.Minute))
	}

	fmt.Printf("\nlow-accuracy (GSM) routes: %d\n", len(svc.GSMRoutes()))
	for _, rt := range svc.GSMRoutes() {
		fmt.Printf("  route gsm-%d: %d cells, traversed %dx\n", rt.ID, len(rt.Cells), rt.Frequency())
	}

	fmt.Println("\nday profiles:")
	for _, d := range svc.Profiles() {
		fmt.Printf("  %s: %d place visits, %d route uses, dwell %s\n",
			d.Date, len(d.Places), len(d.Routes), d.TotalDwell().Truncate(time.Minute))
	}

	fmt.Printf("\nintents delivered to the demo app: %d\n", events)
	fmt.Printf("sensing cost: GSM=%d WiFi=%d GPS=%d samples -> projected battery %.0f h\n",
		meter.Samples(energy.GSM), meter.Samples(energy.WiFi), meter.Samples(energy.GPS),
		meter.ProjectedLifeHours(72*time.Hour))
}
