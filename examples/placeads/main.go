// PlaceADs demo (paper Section 3): the contextual-advertisement application
// connects to PMWare at area-level granularity — the user's privacy
// preference caps what it can see — and pushes ad cards for points of
// interest near each place the user visits. The simulated user swipes left
// (like) on context-relevant cards.
//
//	go run ./examples/placeads
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/placeads"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/mobility"
	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(21))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "carol", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 7, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(22)))
	if err != nil {
		panic(err)
	}

	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(23)))
	meter := energy.NewMeter(energy.DefaultModel())

	// PlaceADs needs geolocated place coordinates: use the in-process cloud
	// geo service (Cell-ID -> lat/lng).
	api := exampleCloud{
		store: cloud.NewStore(nil),
		cells: cloud.NewCellDatabase(w, 150),
	}
	svc := core.NewService(core.DefaultConfig("carol"), clock, sensors, meter, api)

	// The user allows advertisement apps only area-level location.
	svc.Prefs.SetAppGranularity(placeads.AppID, core.GranularityArea)

	directory := placeads.NewPOIDirectory(w)
	swiper := &placeads.SimSwiper{
		Directory:      directory,
		TruePosition:   it.PositionAt,
		RelevanceM:     2000,
		RelevantProb:   0.92,
		IrrelevantProb: 0.25,
		Rand:           rand.New(rand.NewSource(24)),
	}
	app := placeads.New(placeads.DefaultInventory(), directory, swiper)
	if err := app.Attach(svc); err != nil {
		panic(err)
	}

	fmt.Println("a week with PlaceADs connected to PMWare...")
	svc.Run(7 * 24 * time.Hour)

	fmt.Printf("\nad cards shown: %d\n", len(app.Impressions()))
	for i, im := range app.Impressions() {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", len(app.Impressions())-i)
			break
		}
		swipe := "liked   <-"
		if !im.Liked {
			swipe = "disliked ->"
		}
		fmt.Printf("  %s  %-28s (%s, %d%% off)  %s\n",
			im.At.Format("Mon 15:04"), im.Ad.Title, im.Ad.Category, im.Ad.Discount, swipe)
	}
	likes, dislikes := app.LikeDislike()
	total := likes + dislikes
	if total > 0 {
		fmt.Printf("\nlike:dislike = %d:%d  (%.1f : %.1f of 20; paper reports 17:3)\n",
			likes, dislikes, 20*float64(likes)/float64(total), 20*float64(dislikes)/float64(total))
	}
}

// exampleCloud is a minimal in-process core.CloudAPI for the demo: local
// GCA, local profile storage, and the synthetic cell-geolocation database.
type exampleCloud struct {
	store *cloud.Store
	cells *cloud.CellDatabase
}

var _ core.CloudAPI = exampleCloud{}

func (c exampleCloud) DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error) {
	return gsm.Discover(obs, gsm.DefaultParams()).Places, nil
}

func (c exampleCloud) SyncProfile(p *profile.DayProfile) error {
	return c.store.PutProfile(p.UserID, p)
}

func (c exampleCloud) GeolocateCell(id world.CellID) (geo.LatLng, float64, error) {
	e, ok := c.cells.Lookup(id)
	if !ok {
		return geo.LatLng{}, 0, fmt.Errorf("unknown cell %s", id)
	}
	return geo.LatLng{Lat: e.Lat, Lng: e.Lng}, e.AccuracyMeters, nil
}
