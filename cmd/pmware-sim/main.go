// Command pmware-sim runs the paper's deployment study (Section 4): 16
// simulated participants carry the PMWare mobile service (packaged with the
// life-logging app) plus the PlaceADs connected application for two weeks,
// and the study reports discovery counts, tagging, correct/merged/divided
// rates, and the PlaceADs like:dislike ratio — next to the paper's numbers.
//
// Usage:
//
//	pmware-sim [-participants 16] [-days 14] [-seed 2014] [-http] [-save store.json]
//
// With -http the entire study runs through a real loopback HTTP cloud
// instance (registration, GCA offload, profile sync, geolocation) instead of
// the in-process adapter.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"

	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/study"
	"repro/internal/viz"
	"repro/internal/world"
)

func main() {
	participants := flag.Int("participants", 16, "number of participants")
	days := flag.Int("days", 14, "study duration in days")
	seed := flag.Int64("seed", 2014, "master random seed")
	useHTTP := flag.Bool("http", false, "run the cloud instance over loopback HTTP")
	social := flag.Bool("social", false, "enable Bluetooth social discovery between participants")
	showMap := flag.Bool("map", false, "render an ASCII map of all discovered places (Figure 5b)")
	save := flag.String("save", "", "save the cloud store to this JSON file afterwards")
	flag.Parse()

	cfg := study.DefaultConfig()
	cfg.Participants = *participants
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Social = *social

	var store *cloud.Store
	if *useHTTP {
		// Build the same world the study will generate, for the cell DB.
		w := world.Generate(cfg.World, rand.New(rand.NewSource(cfg.Seed)))
		store = cloud.NewStore(nil)
		server := cloud.NewServer(store, cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		go func() {
			if err := http.Serve(ln, server.Handler()); err != nil {
				log.Printf("cloud server: %v", err)
			}
		}()
		cfg.CloudBaseURL = "http://" + ln.Addr().String()
		log.Printf("cloud instance on %s", cfg.CloudBaseURL)
	}

	res, err := study.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := study.WriteReport(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *showMap {
		var centers []geo.LatLng
		for _, pr := range res.Participants {
			centers = append(centers, pr.PlaceCenters...)
		}
		m, skipped := viz.PlacesMap(res.World, centers, 100, 36)
		fmt.Printf("\nall places discovered during the study (Figure 5b); %s, %d not geolocated:\n", m.Summary(), skipped)
		if err := m.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *save != "" && store != nil {
		if err := store.Save(*save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ncloud store saved to %s\n", *save)
	}
}
