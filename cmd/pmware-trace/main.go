// Command pmware-trace generates synthetic sensor traces and runs the place
// and route discovery algorithms over trace files — the offline analysis
// workflow for archived deployment data.
//
//	pmware-trace gen  -out trace.jsonl [-format jsonl|binary] [-seed 42] [-days 7] [-gsm 1m] [-wifi 1m] [-gps 1m]
//	pmware-trace show -in trace.jsonl
//	pmware-trace discover -in trace.jsonl [-algo gsm|wifi|gps]
//
// Readers sniff the format (the binary container opens with the "PMTB"
// magic), so show/discover accept either encoding without a flag.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/geo"
	"repro/internal/gpsplace"
	"repro/internal/gsm"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/wifi"
	"repro/internal/world"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "discover":
		cmdDiscover(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmware-trace gen|show|discover [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.jsonl", "output file")
	format := fs.String("format", "jsonl", "output format: jsonl or binary")
	seed := fs.Int64("seed", 42, "random seed")
	days := fs.Int("days", 7, "days of simulated life")
	gsmEvery := fs.Duration("gsm", time.Minute, "GSM sampling interval")
	wifiEvery := fs.Duration("wifi", time.Minute, "WiFi scan interval (0 = off)")
	gpsEvery := fs.Duration("gps", time.Minute, "GPS fix interval (0 = off)")
	_ = fs.Parse(args)

	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(*seed))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "trace-agent", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, *days, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		fatal(err)
	}
	s := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(*seed+2)))

	b := &trace.Bundle{GSM: s.CollectGSM(it.Start, it.End, *gsmEvery)}
	if *wifiEvery > 0 {
		b.WiFi = s.CollectWiFi(it.Start, it.End, *wifiEvery)
	}
	if *gpsEvery > 0 {
		b.GPS = s.CollectGPS(it.Start, it.End, *gpsEvery)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *format {
	case "jsonl":
		err = trace.WriteBundle(f, b)
	case "binary", "bin":
		err = trace.WriteBinaryBundle(f, b)
	default:
		fmt.Fprintf(os.Stderr, "unknown -format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d gsm, %d wifi, %d gps records over %d days (truth: %d venues)\n",
		*out, len(b.GSM), len(b.WiFi), len(b.GPS), *days, len(it.VisitedVenueIDs(10*time.Minute)))
}

func readBundle(path string) *trace.Bundle {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	b, err := trace.ReadAuto(f)
	if err != nil {
		fatal(err)
	}
	return b
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "trace.jsonl", "input file")
	_ = fs.Parse(args)

	b := readBundle(*in)
	fmt.Printf("%s:\n", *in)
	fmt.Printf("  gsm observations: %d (%d distinct cells)\n", len(b.GSM), len(trace.DistinctCells(b.GSM)))
	fmt.Printf("  wifi scans:       %d\n", len(b.WiFi))
	fmt.Printf("  gps fixes:        %d\n", len(b.GPS))
	fmt.Printf("  activity samples: %d\n", len(b.Activity))
	if len(b.GSM) > 0 {
		fmt.Printf("  span: %s .. %s\n",
			b.GSM[0].At.Format(time.RFC3339), b.GSM[len(b.GSM)-1].At.Format(time.RFC3339))
	}
}

func cmdDiscover(args []string) {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	in := fs.String("in", "trace.jsonl", "input file")
	algo := fs.String("algo", "gsm", "algorithm: gsm (GCA), wifi (SensLoc), gps (Kang)")
	_ = fs.Parse(args)

	b := readBundle(*in)
	switch *algo {
	case "gsm":
		res := gsm.Discover(b.GSM, gsm.DefaultParams())
		fmt.Printf("GCA: %d stay segments -> %d places\n", len(res.Segments), len(res.Places))
		for _, p := range res.Places {
			fmt.Printf("  place %d: signature %v, %d visits, dwell %s\n",
				p.ID, p.Signature, len(p.Visits), p.TotalDwell().Truncate(time.Minute))
		}
	case "wifi":
		res := wifi.Discover(b.WiFi, wifi.DefaultParams())
		fmt.Printf("SensLoc: %d places\n", len(res.Places))
		for _, p := range res.Places {
			fmt.Printf("  place %d: %d APs in signature, %d visits, dwell %s\n",
				p.ID, len(p.Sig), len(p.Visits), p.TotalDwell().Truncate(time.Minute))
		}
	case "gps":
		res := gpsplace.Discover(b.GPS, gpsplace.DefaultParams())
		fmt.Printf("Kang: %d places\n", len(res.Places))
		for _, p := range res.Places {
			fmt.Printf("  place %d: center %s, %d visits, dwell %s\n",
				p.ID, p.Center, len(p.Visits), p.TotalDwell().Truncate(time.Minute))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -algo %q\n", *algo)
		os.Exit(2)
	}
}
