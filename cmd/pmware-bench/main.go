// Command pmware-bench regenerates the paper's figures and evaluation
// numbers as text tables:
//
//	pmware-bench -fig 1       Figure 1: battery duration per location interface
//	pmware-bench -fig 2       Figure 2: place-aware application characterization
//	pmware-bench -fig study   Section 4 deployment study (also: pmware-sim)
//	pmware-bench -fig ablations  triggered-sensing and shared-PMS ablations
//	pmware-bench -fig all     everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/study"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 1, 2, study, ablations, all")
	participants := flag.Int("participants", 16, "study participants (study/ablations)")
	days := flag.Int("days", 14, "study days")
	seed := flag.Int64("seed", 2014, "study seed")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	model := energy.DefaultModel()
	pmsCfg := core.DefaultConfig("bench")

	figure1 := func() error { return energy.WriteFigure1(os.Stdout, model) }
	figure2 := func() error { return core.WriteFigure2(os.Stdout, model, pmsCfg) }
	studyFn := func() error {
		cfg := study.DefaultConfig()
		cfg.Participants = *participants
		cfg.Days = *days
		cfg.Seed = *seed
		res, err := study.Run(cfg)
		if err != nil {
			return err
		}
		return study.WriteReport(os.Stdout, res)
	}
	ablations := func() error {
		fmt.Println("Ablation 1: triggered sensing vs always-on, building-level requirement")
		triggered := core.SensingPlan(core.GranularityBuilding, core.RouteNone, pmsCfg)
		alwaysGPS := []energy.Load{{Interface: energy.GSM, Interval: pmsCfg.GSMInterval}, {Interface: energy.GPS, Interval: pmsCfg.GSMInterval}}
		alwaysWiFi := []energy.Load{{Interface: energy.GSM, Interval: pmsCfg.GSMInterval}, {Interface: energy.WiFi, Interval: pmsCfg.GSMInterval}}
		fmt.Printf("  %-28s %8.1f h\n", "PMWare triggered sensing", core.PlanBatteryHours(model, triggered))
		fmt.Printf("  %-28s %8.1f h\n", "always-on WiFi @1min", core.PlanBatteryHours(model, alwaysWiFi))
		fmt.Printf("  %-28s %8.1f h\n", "always-on GPS @1min", core.PlanBatteryHours(model, alwaysGPS))

		fmt.Println("\nAblation 2: N isolated app sensing stacks vs one shared PMS (building level)")
		shared := core.PlanBatteryHours(model, core.SensingPlan(core.GranularityBuilding, core.RouteNone, pmsCfg))
		for _, n := range []int{1, 2, 4, 8} {
			iso := core.PlanBatteryHours(model, core.IsolatedAppsPlan(n, core.GranularityBuilding, core.RouteNone, pmsCfg))
			fmt.Printf("  n=%d  isolated %8.1f h   shared %8.1f h   saving %5.1f%%\n",
				n, iso, shared, (1-iso/shared)*100)
		}

		fmt.Println("\nAblation 3: place merge rate per interface pipeline (small study)")
		cfg := study.DefaultConfig()
		cfg.Participants = *participants
		cfg.Days = *days
		cfg.Seed = *seed
		res, err := study.Run(cfg)
		if err != nil {
			return err
		}
		line := func(name string, c, m, d float64, missed int) {
			fmt.Printf("  %-26s correct %6.2f%%  merged %6.2f%%  divided %6.2f%%  missed %d\n",
				name, c*100, m*100, d*100, missed)
		}
		c, m, d := res.GSMOnly.Rates()
		line("GSM only", c, m, d, res.GSMOnly.Missed)
		c, m, d = res.Fused.Rates()
		line("GSM + opportunistic WiFi", c, m, d, res.Fused.Missed)
		c, m, d = res.WiFiOnly.Rates()
		line("WiFi only", c, m, d, res.WiFiOnly.Missed)
		return nil
	}

	switch *fig {
	case "1":
		run("Figure 1: power consumption of location interfaces", figure1)
	case "2":
		run("Figure 2: characterization of place-aware applications", figure2)
	case "study":
		run("Section 4: deployment study", studyFn)
	case "ablations":
		run("Design-choice ablations", ablations)
	case "all":
		run("Figure 1: power consumption of location interfaces", figure1)
		run("Figure 2: characterization of place-aware applications", figure2)
		run("Section 4: deployment study", studyFn)
		run("Design-choice ablations", ablations)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q (want 1, 2, study, ablations, all)\n", *fig)
		os.Exit(2)
	}
}
