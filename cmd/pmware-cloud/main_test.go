package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSidecarServesMetrics boots the side listener on an ephemeral port and
// checks both /metrics renderings plus the pprof index.
func TestSidecarServesMetrics(t *testing.T) {
	sc, err := startSidecar("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Shutdown(context.Background())

	resp, err := http.Get("http://" + sc.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	// The default registry carries the package-init client and PMS families
	// (this binary links internal/cloud and internal/core), so a freshly
	// booted process already exposes them.
	for _, name := range []string{"client_attempts_total", "pms_outbox_enqueued_total"} {
		if _, ok := doc.Counters[name]; !ok {
			t.Errorf("/metrics missing counter %q", name)
		}
	}

	resp, err = http.Get("http://" + sc.Addr() + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "client_attempts_total") {
		t.Errorf("text rendering missing client_attempts_total:\n%s", text)
	}

	resp, err = http.Get("http://" + sc.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d", resp.StatusCode)
	}
}

// TestSidecarShutdown pins the lifecycle fix: Shutdown returns only after the
// serve loop exits, and the port stops accepting connections.
func TestSidecarShutdown(t *testing.T) {
	sc, err := startSidecar("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := sc.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-sc.done:
	default:
		t.Fatal("serve loop still running after Shutdown returned")
	}
	if conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		conn.Close()
		t.Fatalf("port %s still accepting connections after shutdown", addr)
	}

	// The freed address can be rebound immediately — no lingering listener.
	sc2, err := startSidecar(addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	sc2.Shutdown(context.Background())
}

// TestSidecarBadAddr: a bad address fails synchronously at startup instead of
// logging from a goroutine after main has moved on.
func TestSidecarBadAddr(t *testing.T) {
	if _, err := startSidecar("256.256.256.256:99999"); err == nil {
		t.Fatal("startSidecar accepted an unusable address")
	}
}
