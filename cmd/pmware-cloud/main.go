// Command pmware-cloud runs the PMWare Cloud Instance: the REST service the
// mobile service syncs against (paper Section 2.3). It serves registration,
// place/route discovery offload, mobility profiles, social contacts, Cell-ID
// geolocation, and the analytics/prediction endpoints.
//
// Usage:
//
//	pmware-cloud [-addr :8080] [-data-dir ./pmware-data] [-fsync always]
//	             [-shards 8] [-commit-batch 128] [-commit-linger 0s]
//	             [-pprof :6060] [-store pmware-store.json] [-world-seed 2014]
//
// With -data-dir the instance runs on the durable storage engine: every
// mutation is journaled to a per-shard write-ahead log, snapshots compact the
// logs periodically, and on boot the instance recovers automatically from
// whatever the last run left on disk (including crashes mid-write). -fsync
// picks the durability/latency trade-off and -shards the number of data
// shards for concurrent writers; the shard count is pinned by the data
// directory's manifest after the first boot.
//
// The legacy -store JSON file, when given, is loaded on startup (if present)
// and saved on SIGINT/SIGTERM; it can be combined with -data-dir to migrate
// an old store file into a durable data directory.
//
// The world seed builds the synthetic Open-Cell-ID database so geolocation
// answers match simulations generated from the same seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/storage"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", storage.DefaultSyncEvery, "max ack-to-disk lag under -fsync interval")
	shards := flag.Int("shards", cloud.DefaultShards, "data shards (pinned by the data directory after first boot)")
	commitBatch := flag.Int("commit-batch", 0, "max mutations per WAL group commit (0 = default, negative = no grouping)")
	commitLinger := flag.Duration("commit-linger", 0, "how long a commit leader waits for followers when its batch is short")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (empty = disabled)")
	storePath := flag.String("store", "", "legacy JSON persistence file (optional)")
	worldSeed := flag.Int64("world-seed", 2014, "seed of the synthetic world for the cell database")
	extent := flag.Float64("extent", 2600, "world half-extent in meters (must match the simulation)")
	flag.Parse()

	if *pprofAddr != "" {
		// A side listener with an explicit mux: the profiling surface never
		// shares a port (or a mux) with the public API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	wc := world.DefaultConfig()
	wc.ExtentMeters = *extent
	wc.TowerGridMeters = 500
	wc.TowerRangeMeters = 800
	w := world.Generate(wc, rand.New(rand.NewSource(*worldSeed)))

	store, err := openStore(*dataDir, *fsyncMode, *fsyncEvery, *shards, *commitBatch, *commitLinger)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	if *storePath != "" {
		if err := store.Load(*storePath); err == nil {
			log.Printf("loaded store from %s (%d users)", *storePath, store.UserCount())
		} else if !os.IsNotExist(unwrapPathError(err)) {
			log.Printf("warning: could not load %s: %v", *storePath, err)
		}
	}

	server := cloud.NewServer(store, cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		code := 0
		if *storePath != "" {
			if err := store.Save(*storePath); err != nil {
				log.Printf("save failed: %v", err)
				code = 1
			} else {
				log.Printf("store saved to %s", *storePath)
			}
		}
		// Close compacts each shard and fsyncs, so the next boot recovers
		// from snapshots instead of replaying the full logs.
		if err := store.Close(); err != nil {
			log.Printf("close failed: %v", err)
			code = 1
		}
		os.Exit(code)
	}()

	log.Printf("PMWare cloud instance listening on %s (world seed %d, %d towers in cell DB)",
		*addr, *worldSeed, len(w.Towers))
	if err := http.ListenAndServe(*addr, server.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// openStore builds the in-memory store or opens (and recovers) a durable one.
func openStore(dir, fsyncMode string, fsyncEvery time.Duration, shards, commitBatch int, commitLinger time.Duration) (*cloud.Store, error) {
	if dir == "" {
		return cloud.NewStore(nil), nil
	}
	policy, err := storage.ParseSyncPolicy(fsyncMode)
	if err != nil {
		return nil, err
	}
	store, err := cloud.OpenStore(dir, cloud.StoreConfig{
		Shards:         shards,
		Sync:           policy,
		SyncEvery:      fsyncEvery,
		CommitMaxBatch: commitBatch,
		CommitLinger:   commitLinger,
	})
	if err != nil {
		return nil, err
	}
	log.Printf("durable store open at %s (fsync=%s, %d data shards, %d users recovered)",
		dir, policy, store.ShardCount(), store.UserCount())
	return store, nil
}

// unwrapPathError digs out the fs-level error so missing files are not
// treated as load failures.
func unwrapPathError(err error) error {
	for {
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
