// Command pmware-cloud runs the PMWare Cloud Instance: the REST service the
// mobile service syncs against (paper Section 2.3). It serves registration,
// place/route discovery offload, mobility profiles, social contacts, Cell-ID
// geolocation, and the analytics/prediction endpoints.
//
// Usage:
//
//	pmware-cloud [-addr :8080] [-data-dir ./pmware-data] [-fsync always]
//	             [-shards 8] [-compact-every 4096]
//	             [-commit-batch 128] [-commit-linger 0s]
//	             [-discover-workers 4] [-discover-queue 64] [-max-body 64MiB]
//	             [-event-queue 64] [-event-history 256] [-event-heartbeat 15s]
//	             [-pprof :6060] [-slow-request 0s]
//	             [-store pmware-store.json] [-world-seed 2014]
//
// With -data-dir the instance runs on the durable storage engine: every
// mutation is journaled to a per-shard write-ahead log, snapshots compact the
// logs periodically, and on boot the instance recovers automatically from
// whatever the last run left on disk (including crashes mid-write). -fsync
// picks the durability/latency trade-off and -shards the number of data
// shards for concurrent writers; the shard count is pinned by the data
// directory's manifest after the first boot. -compact-every tunes how many
// journaled records a shard accepts before it snapshots and rotates its log;
// the snapshot encode and fsync run off the shard lock (DESIGN.md §16), so a
// smaller cadence buys faster recovery without stalling writers.
//
// Discovery offload runs on a bounded worker pool: -discover-workers sets
// how many GCA runs execute concurrently and -discover-queue how many may
// wait; past that the instance answers 429 + Retry-After instead of piling
// up goroutines. -max-body caps request body size (oversized uploads are
// rejected with 413); the streaming ingest and event-subscription routes are
// exempt, since they are long-lived by design.
//
// Real-time events: -event-queue sets the per-subscriber bounded queue (a
// consumer that falls further behind is evicted and must resume with
// Last-Event-ID), -event-history the per-user replay ring backing resume,
// and -event-heartbeat the SSE keep-alive period on idle subscriptions.
//
// Clustering: -cluster lists the members as id=url pairs and -node-id names
// this node's entry; the node then partitions users over the consistent-hash
// ring, ships its WAL to the ring-assigned follower, and gates client
// requests on ownership (see DESIGN.md §15). -repl-dir holds the stream
// epoch and replication cursors, and -coord runs the embedded coordinator —
// exactly one node per cluster should pass it — which health-probes the
// members and pushes failover ring versions.
//
// The legacy -store JSON file, when given, is loaded on startup (if present)
// and saved on SIGINT/SIGTERM; it can be combined with -data-dir to migrate
// an old store file into a durable data directory.
//
// The -pprof side listener also serves /metrics: a JSON (or, with
// ?format=text, expvar-style) dump of the process-wide observability
// registry — request, storage, retry, and outbox counter families.
// -slow-request logs any API request slower than the given threshold.
//
// The world seed builds the synthetic Open-Cell-ID database so geolocation
// answers match simulations generated from the same seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", storage.DefaultSyncEvery, "max ack-to-disk lag under -fsync interval")
	shards := flag.Int("shards", cloud.DefaultShards, "data shards (pinned by the data directory after first boot)")
	commitBatch := flag.Int("commit-batch", 0, "max mutations per WAL group commit (0 = default, negative = no grouping)")
	commitLinger := flag.Duration("commit-linger", 0, "how long a commit leader waits for followers when its batch is short")
	compactEvery := flag.Int("compact-every", 0, "snapshot+rotate a shard after this many journaled records (0 = engine default, negative = disable auto-compaction)")
	discoverWorkers := flag.Int("discover-workers", cloud.DefaultDiscoverWorkers, "concurrent discovery (GCA) runs")
	discoverQueue := flag.Int("discover-queue", cloud.DefaultDiscoverQueue, "queued discovery requests before 429 backpressure")
	maxBody := flag.Int64("max-body", cloud.DefaultMaxBodyBytes, "max request body bytes (oversized uploads get 413; streaming routes exempt)")
	eventQueue := flag.Int("event-queue", 0, "per-subscriber event queue capacity before slow-consumer eviction (0 = default)")
	eventHistory := flag.Int("event-history", 0, "per-user event replay ring backing Last-Event-ID resume (0 = default)")
	eventHeartbeat := flag.Duration("event-heartbeat", cloud.DefaultEventHeartbeat, "SSE heartbeat period on idle event subscriptions")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this side address (empty = disabled)")
	slowReq := flag.Duration("slow-request", 0, "log API requests slower than this threshold (0 = disabled)")
	storePath := flag.String("store", "", "legacy JSON persistence file (optional)")
	worldSeed := flag.Int64("world-seed", 2014, "seed of the synthetic world for the cell database")
	extent := flag.Float64("extent", 2600, "world half-extent in meters (must match the simulation)")
	clusterSpec := flag.String("cluster", "", "cluster membership as comma-separated id=url pairs (e.g. a=http://h1:8080,b=http://h2:8080); empty = single node")
	nodeID := flag.String("node-id", "", "this node's ID within -cluster")
	advertiseURL := flag.String("advertise", "", "override this node's advertised base URL (default: its -cluster entry)")
	replDir := flag.String("repl-dir", "", "replication state directory (stream epoch + cursors); default <data-dir>/repl")
	shipLinger := flag.Duration("ship-linger", 0, "hold partial replication batches this long to coalesce writers (0 = default, negative = ship immediately)")
	coord := flag.Bool("coord", false, "run the embedded cluster coordinator on this node (health probes + ring pushes)")
	coordInterval := flag.Duration("coord-interval", 2*time.Second, "coordinator health probe period")
	coordFails := flag.Int("coord-fails", 3, "consecutive failed probes before the coordinator promotes a node's follower")
	flag.Parse()

	var side *sidecar
	if *pprofAddr != "" {
		var err error
		side, err = startSidecar(*pprofAddr)
		if err != nil {
			log.Fatalf("pprof/metrics side listener: %v", err)
		}
		log.Printf("pprof + /metrics listening on %s", side.Addr())
	}

	wc := world.DefaultConfig()
	wc.ExtentMeters = *extent
	wc.TowerGridMeters = 500
	wc.TowerRangeMeters = 800
	w := world.Generate(wc, rand.New(rand.NewSource(*worldSeed)))

	var store *cloud.Store
	var cnode *cloud.ClusterNode
	var coordinator *cluster.Coordinator
	if *clusterSpec != "" {
		peers, self, err := parseClusterSpec(*clusterSpec, *nodeID, *advertiseURL)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		storeCfg, err := buildStoreConfig(*dataDir, *fsyncMode, *fsyncEvery, *shards, *commitBatch, *commitLinger, *compactEvery)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		rd := *replDir
		if rd == "" && *dataDir != "" {
			rd = filepath.Join(*dataDir, "repl")
		}
		cnode, err = cloud.NewClusterNode(*dataDir, storeCfg, cloud.ClusterNodeConfig{
			Self:       self,
			Peers:      peers,
			ReplDir:    rd,
			ShipLinger: *shipLinger,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatalf("cluster node: %v", err)
		}
		store = cnode.Store()
		log.Printf("cluster node %s up (%d members, follower stream armed)", self.ID, len(peers))
		if *coord {
			coordinator = cluster.NewCoordinator(peers, cluster.DefaultVNodes, nil, log.Printf)
			coordinator.StartHealth(*coordInterval, *coordFails)
			log.Printf("embedded coordinator probing %d members every %s", len(peers), *coordInterval)
		}
	} else {
		var err error
		store, err = openStore(*dataDir, *fsyncMode, *fsyncEvery, *shards, *commitBatch, *commitLinger, *compactEvery)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
	}
	if *storePath != "" {
		if err := store.Load(*storePath); err == nil {
			log.Printf("loaded store from %s (%d users)", *storePath, store.UserCount())
		} else if !os.IsNotExist(unwrapPathError(err)) {
			log.Printf("warning: could not load %s: %v", *storePath, err)
		}
	}

	opts := []cloud.ServerOption{
		cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)),
		cloud.WithDiscoverPool(*discoverWorkers, *discoverQueue),
		cloud.WithMaxBodyBytes(*maxBody),
		cloud.WithEventQueue(*eventQueue, *eventHistory),
		cloud.WithEventHeartbeat(*eventHeartbeat),
	}
	if *slowReq > 0 {
		opts = append(opts, cloud.WithSlowRequestLog(*slowReq, nil))
	}
	if cnode != nil {
		opts = append(opts, cloud.WithClusterNode(cnode))
	}
	server := cloud.NewServer(store, opts...)

	api := &http.Server{Addr: *addr, Handler: server.Handler()}

	// On SIGINT/SIGTERM drain both listeners; the save/close sequence then
	// runs on the main goroutine after ListenAndServe returns, so the side
	// listener can never outlive the API server (or the process).
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if side != nil {
			if err := side.Shutdown(ctx); err != nil {
				log.Printf("side listener shutdown: %v", err)
			}
		}
		if err := api.Shutdown(ctx); err != nil {
			log.Printf("api shutdown: %v", err)
		}
	}()

	log.Printf("PMWare cloud instance listening on %s (world seed %d, %d towers in cell DB)",
		*addr, *worldSeed, len(w.Towers))
	if err := api.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	code := 0
	if *storePath != "" {
		if err := store.Save(*storePath); err != nil {
			log.Printf("save failed: %v", err)
			code = 1
		} else {
			log.Printf("store saved to %s", *storePath)
		}
	}
	// Stop the discovery workers before the store goes away under them.
	server.Close()
	if coordinator != nil {
		coordinator.Stop()
	}
	if cnode != nil {
		// Flush the replication stream and persist exact cursors before the
		// store closes under the shipper/receiver.
		if err := cnode.Close(); err != nil {
			log.Printf("cluster close failed: %v", err)
			code = 1
		}
	}
	// Close compacts each shard and fsyncs, so the next boot recovers from
	// snapshots instead of replaying the full logs.
	if err := store.Close(); err != nil {
		log.Printf("close failed: %v", err)
		code = 1
	}
	os.Exit(code)
}

// parseClusterSpec parses "id=url,id=url" into the membership list and
// resolves this node's own entry.
func parseClusterSpec(spec, selfID, advertise string) ([]cluster.Node, cluster.Node, error) {
	if selfID == "" {
		return nil, cluster.Node{}, fmt.Errorf("-cluster requires -node-id")
	}
	var peers []cluster.Node
	var self cluster.Node
	found := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, cluster.Node{}, fmt.Errorf("bad -cluster entry %q (want id=url)", part)
		}
		n := cluster.Node{ID: id, URL: strings.TrimSuffix(u, "/")}
		if id == selfID {
			if advertise != "" {
				n.URL = strings.TrimSuffix(advertise, "/")
			}
			self = n
			found = true
		}
		peers = append(peers, n)
	}
	if !found {
		return nil, cluster.Node{}, fmt.Errorf("-node-id %q not present in -cluster", selfID)
	}
	if len(peers) < 2 {
		return nil, cluster.Node{}, fmt.Errorf("-cluster needs at least 2 members (got %d)", len(peers))
	}
	return peers, self, nil
}

// buildStoreConfig assembles the StoreConfig a cluster node opens its store
// with (dir may be empty for memory-only).
func buildStoreConfig(dir, fsyncMode string, fsyncEvery time.Duration, shards, commitBatch int, commitLinger time.Duration, compactEvery int) (cloud.StoreConfig, error) {
	cfg := cloud.StoreConfig{
		Shards:         shards,
		SyncEvery:      fsyncEvery,
		CompactEvery:   compactEvery,
		CommitMaxBatch: commitBatch,
		CommitLinger:   commitLinger,
	}
	if dir != "" {
		policy, err := storage.ParseSyncPolicy(fsyncMode)
		if err != nil {
			return cloud.StoreConfig{}, err
		}
		cfg.Sync = policy
	}
	return cfg, nil
}

// openStore builds the in-memory store or opens (and recovers) a durable one.
func openStore(dir, fsyncMode string, fsyncEvery time.Duration, shards, commitBatch int, commitLinger time.Duration, compactEvery int) (*cloud.Store, error) {
	if dir == "" {
		return cloud.NewStore(nil), nil
	}
	policy, err := storage.ParseSyncPolicy(fsyncMode)
	if err != nil {
		return nil, err
	}
	store, err := cloud.OpenStore(dir, cloud.StoreConfig{
		Shards:         shards,
		Sync:           policy,
		SyncEvery:      fsyncEvery,
		CompactEvery:   compactEvery,
		CommitMaxBatch: commitBatch,
		CommitLinger:   commitLinger,
	})
	if err != nil {
		return nil, err
	}
	log.Printf("durable store open at %s (fsync=%s, %d data shards, %d users recovered)",
		dir, policy, store.ShardCount(), store.UserCount())
	return store, nil
}

// unwrapPathError digs out the fs-level error so missing files are not
// treated as load failures.
func unwrapPathError(err error) error {
	for {
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
