// Command pmware-cloud runs the PMWare Cloud Instance: the REST service the
// mobile service syncs against (paper Section 2.3). It serves registration,
// place/route discovery offload, mobility profiles, social contacts, Cell-ID
// geolocation, and the analytics/prediction endpoints.
//
// Usage:
//
//	pmware-cloud [-addr :8080] [-data-dir ./pmware-data] [-fsync always]
//	             [-shards 8] [-commit-batch 128] [-commit-linger 0s]
//	             [-discover-workers 4] [-discover-queue 64] [-max-body 64MiB]
//	             [-event-queue 64] [-event-history 256] [-event-heartbeat 15s]
//	             [-pprof :6060] [-slow-request 0s]
//	             [-store pmware-store.json] [-world-seed 2014]
//
// With -data-dir the instance runs on the durable storage engine: every
// mutation is journaled to a per-shard write-ahead log, snapshots compact the
// logs periodically, and on boot the instance recovers automatically from
// whatever the last run left on disk (including crashes mid-write). -fsync
// picks the durability/latency trade-off and -shards the number of data
// shards for concurrent writers; the shard count is pinned by the data
// directory's manifest after the first boot.
//
// Discovery offload runs on a bounded worker pool: -discover-workers sets
// how many GCA runs execute concurrently and -discover-queue how many may
// wait; past that the instance answers 429 + Retry-After instead of piling
// up goroutines. -max-body caps request body size (oversized uploads are
// rejected with 413); the streaming ingest and event-subscription routes are
// exempt, since they are long-lived by design.
//
// Real-time events: -event-queue sets the per-subscriber bounded queue (a
// consumer that falls further behind is evicted and must resume with
// Last-Event-ID), -event-history the per-user replay ring backing resume,
// and -event-heartbeat the SSE keep-alive period on idle subscriptions.
//
// The legacy -store JSON file, when given, is loaded on startup (if present)
// and saved on SIGINT/SIGTERM; it can be combined with -data-dir to migrate
// an old store file into a durable data directory.
//
// The -pprof side listener also serves /metrics: a JSON (or, with
// ?format=text, expvar-style) dump of the process-wide observability
// registry — request, storage, retry, and outbox counter families.
// -slow-request logs any API request slower than the given threshold.
//
// The world seed builds the synthetic Open-Cell-ID database so geolocation
// answers match simulations generated from the same seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/storage"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", storage.DefaultSyncEvery, "max ack-to-disk lag under -fsync interval")
	shards := flag.Int("shards", cloud.DefaultShards, "data shards (pinned by the data directory after first boot)")
	commitBatch := flag.Int("commit-batch", 0, "max mutations per WAL group commit (0 = default, negative = no grouping)")
	commitLinger := flag.Duration("commit-linger", 0, "how long a commit leader waits for followers when its batch is short")
	discoverWorkers := flag.Int("discover-workers", cloud.DefaultDiscoverWorkers, "concurrent discovery (GCA) runs")
	discoverQueue := flag.Int("discover-queue", cloud.DefaultDiscoverQueue, "queued discovery requests before 429 backpressure")
	maxBody := flag.Int64("max-body", cloud.DefaultMaxBodyBytes, "max request body bytes (oversized uploads get 413; streaming routes exempt)")
	eventQueue := flag.Int("event-queue", 0, "per-subscriber event queue capacity before slow-consumer eviction (0 = default)")
	eventHistory := flag.Int("event-history", 0, "per-user event replay ring backing Last-Event-ID resume (0 = default)")
	eventHeartbeat := flag.Duration("event-heartbeat", cloud.DefaultEventHeartbeat, "SSE heartbeat period on idle event subscriptions")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this side address (empty = disabled)")
	slowReq := flag.Duration("slow-request", 0, "log API requests slower than this threshold (0 = disabled)")
	storePath := flag.String("store", "", "legacy JSON persistence file (optional)")
	worldSeed := flag.Int64("world-seed", 2014, "seed of the synthetic world for the cell database")
	extent := flag.Float64("extent", 2600, "world half-extent in meters (must match the simulation)")
	flag.Parse()

	var side *sidecar
	if *pprofAddr != "" {
		var err error
		side, err = startSidecar(*pprofAddr)
		if err != nil {
			log.Fatalf("pprof/metrics side listener: %v", err)
		}
		log.Printf("pprof + /metrics listening on %s", side.Addr())
	}

	wc := world.DefaultConfig()
	wc.ExtentMeters = *extent
	wc.TowerGridMeters = 500
	wc.TowerRangeMeters = 800
	w := world.Generate(wc, rand.New(rand.NewSource(*worldSeed)))

	store, err := openStore(*dataDir, *fsyncMode, *fsyncEvery, *shards, *commitBatch, *commitLinger)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	if *storePath != "" {
		if err := store.Load(*storePath); err == nil {
			log.Printf("loaded store from %s (%d users)", *storePath, store.UserCount())
		} else if !os.IsNotExist(unwrapPathError(err)) {
			log.Printf("warning: could not load %s: %v", *storePath, err)
		}
	}

	opts := []cloud.ServerOption{
		cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)),
		cloud.WithDiscoverPool(*discoverWorkers, *discoverQueue),
		cloud.WithMaxBodyBytes(*maxBody),
		cloud.WithEventQueue(*eventQueue, *eventHistory),
		cloud.WithEventHeartbeat(*eventHeartbeat),
	}
	if *slowReq > 0 {
		opts = append(opts, cloud.WithSlowRequestLog(*slowReq, nil))
	}
	server := cloud.NewServer(store, opts...)

	api := &http.Server{Addr: *addr, Handler: server.Handler()}

	// On SIGINT/SIGTERM drain both listeners; the save/close sequence then
	// runs on the main goroutine after ListenAndServe returns, so the side
	// listener can never outlive the API server (or the process).
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if side != nil {
			if err := side.Shutdown(ctx); err != nil {
				log.Printf("side listener shutdown: %v", err)
			}
		}
		if err := api.Shutdown(ctx); err != nil {
			log.Printf("api shutdown: %v", err)
		}
	}()

	log.Printf("PMWare cloud instance listening on %s (world seed %d, %d towers in cell DB)",
		*addr, *worldSeed, len(w.Towers))
	if err := api.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	code := 0
	if *storePath != "" {
		if err := store.Save(*storePath); err != nil {
			log.Printf("save failed: %v", err)
			code = 1
		} else {
			log.Printf("store saved to %s", *storePath)
		}
	}
	// Stop the discovery workers before the store goes away under them.
	server.Close()
	// Close compacts each shard and fsyncs, so the next boot recovers from
	// snapshots instead of replaying the full logs.
	if err := store.Close(); err != nil {
		log.Printf("close failed: %v", err)
		code = 1
	}
	os.Exit(code)
}

// openStore builds the in-memory store or opens (and recovers) a durable one.
func openStore(dir, fsyncMode string, fsyncEvery time.Duration, shards, commitBatch int, commitLinger time.Duration) (*cloud.Store, error) {
	if dir == "" {
		return cloud.NewStore(nil), nil
	}
	policy, err := storage.ParseSyncPolicy(fsyncMode)
	if err != nil {
		return nil, err
	}
	store, err := cloud.OpenStore(dir, cloud.StoreConfig{
		Shards:         shards,
		Sync:           policy,
		SyncEvery:      fsyncEvery,
		CommitMaxBatch: commitBatch,
		CommitLinger:   commitLinger,
	})
	if err != nil {
		return nil, err
	}
	log.Printf("durable store open at %s (fsync=%s, %d data shards, %d users recovered)",
		dir, policy, store.ShardCount(), store.UserCount())
	return store, nil
}

// unwrapPathError digs out the fs-level error so missing files are not
// treated as load failures.
func unwrapPathError(err error) error {
	for {
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
