// Command pmware-cloud runs the PMWare Cloud Instance: the REST service the
// mobile service syncs against (paper Section 2.3). It serves registration,
// place/route discovery offload, mobility profiles, social contacts, Cell-ID
// geolocation, and the analytics/prediction endpoints.
//
// Usage:
//
//	pmware-cloud [-addr :8080] [-store pmware-store.json] [-world-seed 2014]
//
// The store file, when given, is loaded on startup (if present) and saved on
// SIGINT/SIGTERM. The world seed builds the synthetic Open-Cell-ID database
// so geolocation answers match simulations generated from the same seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cloud"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "", "JSON persistence file (optional)")
	worldSeed := flag.Int64("world-seed", 2014, "seed of the synthetic world for the cell database")
	extent := flag.Float64("extent", 2600, "world half-extent in meters (must match the simulation)")
	flag.Parse()

	wc := world.DefaultConfig()
	wc.ExtentMeters = *extent
	wc.TowerGridMeters = 500
	wc.TowerRangeMeters = 800
	w := world.Generate(wc, rand.New(rand.NewSource(*worldSeed)))

	store := cloud.NewStore(nil)
	if *storePath != "" {
		if err := store.Load(*storePath); err == nil {
			log.Printf("loaded store from %s (%d users)", *storePath, store.UserCount())
		} else if !os.IsNotExist(unwrapPathError(err)) {
			log.Printf("warning: could not load %s: %v", *storePath, err)
		}
	}

	server := cloud.NewServer(store, cloud.WithCellDatabase(cloud.NewCellDatabase(w, 150)))

	if *storePath != "" {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigs
			if err := store.Save(*storePath); err != nil {
				log.Printf("save failed: %v", err)
				os.Exit(1)
			}
			log.Printf("store saved to %s", *storePath)
			os.Exit(0)
		}()
	}

	log.Printf("PMWare cloud instance listening on %s (world seed %d, %d towers in cell DB)",
		*addr, *worldSeed, len(w.Towers))
	if err := http.ListenAndServe(*addr, server.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// unwrapPathError digs out the fs-level error so missing files are not
// treated as load failures.
func unwrapPathError(err error) error {
	for {
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
