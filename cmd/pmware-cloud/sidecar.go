package main

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// sidecar is the operational side listener: net/http/pprof plus the /metrics
// endpoint over the process-wide metrics registry. It never shares a port (or
// a mux) with the public API, and unlike the old fire-and-forget goroutine it
// is tied to the main server's lifecycle — Shutdown drains it and waits for
// the serve loop to exit, so tests (and clean process shutdown) can prove the
// listener is gone.
type sidecar struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// startSidecar binds addr and serves pprof + /metrics on it. The listen
// happens synchronously so a bad address fails startup instead of logging
// asynchronously from a goroutine.
func startSidecar(addr string) (*sidecar, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", obs.Handler(obs.Default()))
	s := &sidecar{
		srv:  &http.Server{Handler: mux},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed after Shutdown; anything else is a
		// real serve failure, but the process keeps running — the sidecar is
		// operational tooling, not the product surface.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound address (useful when addr had port 0).
func (s *sidecar) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the listener and waits for the serve loop to
// exit (or ctx to expire).
func (s *sidecar) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
