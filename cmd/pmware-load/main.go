// Command pmware-load is the deterministic PMWare load generator.
//
// Usage:
//
//	pmware-load [-spec workload.json] [-seed 1] [-base-url http://host:port]
//	            [-out BENCH_load.json] [-report report.json] [-trace trace.txt]
//	            [-wire json|bin] [-discover-workers 4] [-discover-queue 64]
//	            [-check-determinism] [-print-spec] [-v]
//
// The workload is a Spec (see internal/load): a user population size, a
// closed- or open-loop arrival model, a route mix, and optionally a
// saturation ramp. The same -seed and -spec always produce the same request
// sequence, byte for byte — users, payloads, arrival times, and route
// choices all come from streams derived from (seed, address), never from
// wall clock or scheduler order.
//
// With no -base-url the command self-boots a pmware-cloud server in-process
// on a loopback listener, with its cell database built from the same world
// the population synthesizes traces in (the equivalent of running
// pmware-cloud with matching -world-seed/-extent). With -base-url it drives
// an external server, which must have been started with the spec's
// world_seed and extent_meters for geolocation to resolve.
//
// The SLO report (per-route p50/p99/p999, error and 429 rates, achieved vs
// offered throughput, measured saturation point) prints to stdout, and -out
// appends it to a trajectory file so successive runs accumulate into a
// perf-over-time record. A spec with a "subscribers" section additionally
// attaches that many concurrent SSE event subscribers for the span of the
// run and reports event delivery quantiles alongside the request latencies.
//
// -wire (or the spec's "wire" field) selects the client codec: "json" (the
// default) or "bin" for the negotiated application/x-pmware-bin format. The
// report's measured.wire section records the codec and total body bytes in
// each direction, so two runs of the same spec differing only in -wire give
// the codec's byte delta under identical load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/cloud"
	"repro/internal/load"
)

func main() {
	specPath := flag.String("spec", "", "workload spec JSON (default: built-in 1k-user closed-loop spec)")
	seed := flag.Int64("seed", 1, "master seed; same seed+spec reproduces the run")
	baseURL := flag.String("base-url", "", "PMWare cloud server to drive (default: self-boot one in-process)")
	targets := flag.String("targets", "", "comma-separated cluster node base URLs; clients ring-route across them (overrides -base-url)")
	out := flag.String("out", "", "append the report to this trajectory file (e.g. BENCH_load.json)")
	reportPath := flag.String("report", "", "also write this run's report alone to a file")
	tracePath := flag.String("trace", "", "write the canonical main-phase request trace to a file")
	wire := flag.String("wire", "", "client wire codec: json or bin (overrides the spec's \"wire\" field)")
	discoverWorkers := flag.Int("discover-workers", cloud.DefaultDiscoverWorkers, "self-booted server: concurrent discovery runs")
	discoverQueue := flag.Int("discover-queue", cloud.DefaultDiscoverQueue, "self-booted server: discovery queue before 429")
	checkDeterminism := flag.Bool("check-determinism", false, "compile the schedule twice and fail unless byte-identical (no server needed)")
	printSpec := flag.Bool("print-spec", false, "print the effective spec as JSON and exit")
	verbose := flag.Bool("v", false, "log phase progress to stderr")
	flag.Parse()

	if err := run(*specPath, *seed, *baseURL, *targets, *out, *reportPath, *tracePath, *wire,
		*discoverWorkers, *discoverQueue, *checkDeterminism, *printSpec, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "pmware-load:", err)
		os.Exit(1)
	}
}

func run(specPath string, seed int64, baseURL, targets, out, reportPath, tracePath, wire string,
	discoverWorkers, discoverQueue int, checkDeterminism, printSpec, verbose bool) error {
	spec := load.DefaultSpec()
	if specPath != "" {
		var err error
		if spec, err = load.LoadSpec(specPath); err != nil {
			return err
		}
	}
	if wire != "" {
		spec.Wire = wire
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	if printSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(spec)
	}

	if checkDeterminism {
		a := load.BuildSchedule(spec, load.Key{Seed: seed})
		b := load.BuildSchedule(spec, load.Key{Seed: seed})
		ha, hb := a.Hash(), b.Hash()
		if ha != hb {
			return fmt.Errorf("determinism check FAILED: %016x != %016x", ha, hb)
		}
		fmt.Printf("determinism check ok: %d requests, trace hash %016x\n", len(a.Requests), ha)
		return nil
	}

	var targetList []string
	if targets != "" {
		for _, t := range strings.Split(targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, strings.TrimSuffix(t, "/"))
			}
		}
		if baseURL == "" && len(targetList) > 0 {
			baseURL = targetList[0] // suppress the self-boot path
		}
	}

	cfg := load.RunnerConfig{
		Spec:    spec,
		Seed:    seed,
		BaseURL: baseURL,
		Targets: targetList,
		HTTP: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: spec.Concurrency * 2,
			MaxIdleConns:        spec.Concurrency * 2,
		}},
	}
	if verbose {
		cfg.Logf = log.New(os.Stderr, "pmware-load: ", 0).Printf
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceW = f
	}

	runner, err := load.NewRunner(cfg)
	if err != nil {
		return err
	}

	// Self-boot: the runner's population already generated the world from
	// spec.world_seed/extent_meters; the server's cell database must come
	// from that exact world or geolocation drifts.
	if baseURL == "" {
		store := cloud.NewStore(nil)
		srv := cloud.NewServer(store,
			cloud.WithCellDatabase(cloud.NewCellDatabase(runner.Population().World(), 150)),
			cloud.WithDiscoverPool(discoverWorkers, discoverQueue),
		)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		runner.SetBaseURL(ts.URL)
		if cfg.Logf != nil {
			cfg.Logf("self-booted server at %s (world seed %d, extent %.0fm)", ts.URL, spec.WorldSeed, spec.ExtentMeters)
		}
	}

	rep, err := runner.Run()
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if out != "" {
		if err := load.AppendTrajectory(out, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pmware-load: appended run to %s\n", out)
	}
	return nil
}
